"""Approximate mean-field ODE engine (deterministic expected-count dynamics).

:class:`MeanFieldEngine` integrates the protocol's *expected-count* ordinary
differential equation instead of simulating interactions.  Writing ``y_s``
for the expected fraction of agents in state ``s``, one scheduler step picks
the ordered pair ``(a, b)`` with probability ``x_a (x_b - [a = b]) /
(n (n - 1))`` and applies the deterministic transition ``δ(a, b) = (a', b')``
— so over ``n`` interactions (one parallel-time unit ``τ``) the expected
fractions drift by

.. math::

    \\frac{dy}{dτ} = \\sum_{a,b} w_{ab} \\, Δ_{ab}, \\qquad
    w_{ab} = \\frac{y_a (y_b - δ_{ab}/n)}{1 - 1/n},

where ``Δ_ab`` moves one unit of mass ``a → a'`` and ``b → b'``.  The drift
is assembled directly from the shared compiled
:class:`~repro.engine.table.TransitionTable` IR: the active states' pair
block is pushed through :meth:`~repro.engine.table.TransitionTable.apply_block`
(compiling misses lazily, exactly like the stochastic engines) and the four
scatter sums reduce to ``np.bincount`` calls.  Per active-state-set the
channel structure (which pairs change which states) is cached, so repeated
evaluations cost four ``bincount`` reductions over the *effective* channels.

In the normalised form above the dynamics are independent of ``n`` (up to
the ``1/n`` finite-size correction), which is the entire point: a mean-field
GSU19 curve at ``n = 10^12`` costs the same as one at ``n = 10^3``, opening
instant ``n → ∞`` scaling figures.  The price is exactness — the ODE is the
``n → ∞`` fluid limit, correct for the *mean* occupancy up to ``O(1/√n)``
fluctuations (pinned against the exact engines by
``tests/test_engine_approx.py`` via :mod:`repro.analysis.accuracy`), and it
says nothing about distributions.  The engine is therefore **never**
auto-selected; request it explicitly with ``engine="meanfield"``.

Integration uses the embedded Bogacki–Shampine 3(2) Runge–Kutta pair with
proportional step-size control.  After every accepted step the fractions are
clipped to ``[0, 1]`` and renormalised, so the total mass ``Σ y = 1``
(equivalently ``Σ x = n``) is conserved exactly at every observation point.

The engine supports the full :class:`~repro.engine.base.BaseEngine` API:
``count_vector()`` (a deterministic largest-remainder rounding of the
expected counts, summing to exactly ``n``), compiled views, recorders,
convergence predicates, and bit-exact checkpoint/resume.  The ``rng``
argument is accepted for interface uniformity and ignored — the engine is
deterministic by construction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.engine.base import BaseEngine
from repro.engine.count_engine import initial_count_items
from repro.engine.protocol import PopulationProtocol
from repro.engine.rng import RngLike
from repro.errors import ConfigurationError
from repro.types import State

__all__ = ["MeanFieldEngine"]

#: Fractions below this are treated as unoccupied when assembling the drift:
#: the ODE makes every reachable state's mass positive, so without a floor
#: the active pair block would grow to the full state space squared.  Mass
#: below one part in 10^12 of the population is far beneath the engine's
#:  O(1/sqrt(n)) accuracy contract.
_DEFAULT_ACTIVE_FLOOR = 1e-12

#: Step-size controller clamps (standard embedded-RK practice).
_STEP_SAFETY = 0.9
_STEP_MIN_FACTOR = 0.2
_STEP_MAX_FACTOR = 5.0
_MIN_STEP = 1e-9

#: Channel-structure cache bound: one entry per distinct active state set.
_CHANNEL_CACHE_MAX = 128


class MeanFieldEngine(BaseEngine):
    """Deterministic integration of the protocol's expected-count ODE."""

    exact = False

    def __init__(
        self,
        protocol: PopulationProtocol,
        n: int,
        rng: RngLike = None,
        *,
        rtol: float = 1e-6,
        atol: float = 1e-9,
        active_floor: float = _DEFAULT_ACTIVE_FLOOR,
    ) -> None:
        super().__init__(protocol, n, rng)
        if rtol <= 0 or atol <= 0:
            raise ConfigurationError(
                f"solver tolerances must be positive, got rtol={rtol}, atol={atol}"
            )
        if not 0 <= active_floor < 1:
            raise ConfigurationError(
                f"active_floor must lie in [0, 1), got {active_floor}"
            )
        self.rtol = float(rtol)
        self.atol = float(atol)
        self.active_floor = float(active_floor)
        self._y = np.zeros(len(self.encoder), dtype=np.float64)
        for state, count in initial_count_items(protocol, n):
            sid = self._encode_initial(state)
            self._ensure_width()
            self._y[sid] = count / n
        self._h = 0.01  # parallel-time units; adapted per step
        self._channels: Dict[bytes, tuple] = {}

    # ------------------------------------------------------------------
    # Drift assembly from the compiled IR
    # ------------------------------------------------------------------
    def _ensure_width(self) -> None:
        missing = len(self.encoder) - self._y.shape[0]
        if missing > 0:
            self._y = np.concatenate(
                [self._y, np.zeros(missing, dtype=np.float64)]
            )

    def _channel_structure(self, active: np.ndarray) -> tuple:
        """Effective transition channels among ``active`` state ids.

        Returns ``(responders, initiators, out_r, out_i, eff)`` flat arrays
        over the ``k x k`` active pair block, where ``eff`` indexes the
        channels whose transition changes at least one endpoint.  Cached per
        active set — the expensive parts (the pair-block LUT gather and the
        change masks) are invariant while the active set is stable, which it
        is for long stretches of a trajectory.
        """
        key = active.tobytes()
        cached = self._channels.get(key)
        if cached is not None:
            return cached
        k = active.shape[0]
        responders = np.repeat(active, k)
        initiators = np.tile(active, k)
        out_r, out_i = self.table.apply_block(responders, initiators)
        eff = np.flatnonzero((out_r != responders) | (out_i != initiators))
        if len(self._channels) >= _CHANNEL_CACHE_MAX:
            self._channels.clear()
        structure = (responders, initiators, out_r, out_i, eff)
        self._channels[key] = structure
        return structure

    def _drift(self, y: np.ndarray) -> np.ndarray:
        """``dy/dτ`` assembled from the packed LUT (τ in parallel time)."""
        active = np.flatnonzero(y > self.active_floor)
        if active.size == 0:  # pragma: no cover - defensive (mass is conserved)
            return np.zeros_like(y)
        responders, initiators, out_r, out_i, eff = self._channel_structure(
            active
        )
        self._ensure_width()
        size = self._y.shape[0]
        ya = y[active]
        # Ordered-pair weights with the finite-n without-replacement
        # correction; clipped at 0 (a fraction below 1/n would otherwise
        # produce a negative rate for the diagonal channel).
        n = float(self.n)
        weights = np.outer(ya, ya)
        diagonal = np.arange(active.size)
        weights[diagonal, diagonal] = np.clip(ya * (ya - 1.0 / n), 0.0, None)
        weights /= 1.0 - 1.0 / n
        flat = weights.ravel()[eff]
        if y.shape[0] < size:
            y = np.concatenate([y, np.zeros(size - y.shape[0])])
        drift = np.bincount(out_r[eff], weights=flat, minlength=size)
        drift += np.bincount(out_i[eff], weights=flat, minlength=size)
        drift -= np.bincount(responders[eff], weights=flat, minlength=size)
        drift -= np.bincount(initiators[eff], weights=flat, minlength=size)
        return drift

    @staticmethod
    def _pad(array: np.ndarray, size: int) -> np.ndarray:
        if array.shape[0] >= size:
            return array
        return np.concatenate([array, np.zeros(size - array.shape[0])])

    # ------------------------------------------------------------------
    # Embedded Bogacki–Shampine 3(2) step
    # ------------------------------------------------------------------
    def _advance(self, span: float) -> None:
        """Integrate the ODE forward by ``span`` parallel-time units."""
        remaining = span
        h = self._h
        while remaining > 1e-15:
            h = min(h, remaining)
            k1 = self._drift(self._y)
            size = max(k1.shape[0], self._y.shape[0])
            y0 = self._pad(self._y, size)
            k1 = self._pad(k1, size)
            k2 = self._drift(y0 + 0.5 * h * k1)
            size = max(size, k2.shape[0])
            y0, k1, k2 = (self._pad(a, size) for a in (y0, k1, k2))
            k3 = self._drift(y0 + 0.75 * h * k2)
            size = max(size, k3.shape[0])
            y0, k1, k2, k3 = (self._pad(a, size) for a in (y0, k1, k2, k3))
            y1 = y0 + h * (2.0 / 9.0 * k1 + 1.0 / 3.0 * k2 + 4.0 / 9.0 * k3)
            k4 = self._drift(y1)
            size = max(size, k4.shape[0])
            y0, y1, k1, k2, k3, k4 = (
                self._pad(a, size) for a in (y0, y1, k1, k2, k3, k4)
            )
            # 2nd-order embedded solution; the difference estimates the
            # local error of the 3rd-order step.
            z1 = y0 + h * (
                7.0 / 24.0 * k1 + 0.25 * k2 + 1.0 / 3.0 * k3 + 0.125 * k4
            )
            scale = self.atol + self.rtol * np.maximum(
                np.abs(y0), np.abs(y1)
            )
            error = float(
                np.sqrt(np.mean(np.square((y1 - z1) / scale)))
            )
            if error <= 1.0 or h <= _MIN_STEP:
                # Accept: project back onto the probability simplex so the
                # population (Σ y = 1, i.e. Σ x = n) is conserved exactly.
                np.clip(y1, 0.0, None, out=y1)
                total = float(y1.sum())
                if total > 0.0:
                    y1 /= total
                self._y = y1
                for sid in np.flatnonzero(y1 > self.active_floor).tolist():
                    self._ever_occupied.add(int(sid))
                remaining -= h
            factor = _STEP_SAFETY * (
                error ** (-1.0 / 3.0) if error > 0.0 else _STEP_MAX_FACTOR
            )
            h = max(
                _MIN_STEP,
                h * min(_STEP_MAX_FACTOR, max(_STEP_MIN_FACTOR, factor)),
            )
        self._h = h

    def _perform_steps(self, count: int) -> None:
        if count <= 0:
            return
        self._advance(count / self.n)
        self.interactions += count

    # ------------------------------------------------------------------
    # Count projection (the observation pipeline's substrate)
    # ------------------------------------------------------------------
    def expected_counts(self) -> np.ndarray:
        """Expected (float) counts by state id — the engine's native state."""
        self._ensure_width()
        return self._y * self.n

    def expected_state_counts(self) -> Dict[State, float]:
        """Expected counts keyed by decoded state (non-negligible only)."""
        decode = self.encoder.decode
        return {
            decode(int(sid)): float(self._y[sid] * self.n)
            for sid in np.flatnonzero(self._y > self.active_floor)
        }

    def count_vector(self) -> np.ndarray:
        """Largest-remainder rounding of the expected counts.

        Deterministic (ties broken by state id) and sums to exactly ``n``,
        so convergence predicates, recorders and ``counts_by_output`` see a
        coherent integer configuration.
        """
        self._ensure_width()
        expected = self._y * self.n
        floors = np.floor(expected)
        counts = floors.astype(np.int64)
        shortfall = int(self.n - counts.sum())
        if shortfall > 0:
            remainders = expected - floors
            # argsort is stable, so equal remainders resolve by state id.
            order = np.argsort(-remainders, kind="stable")
            counts[order[:shortfall]] += 1
        elif shortfall < 0:  # pragma: no cover - defensive (floors sum <= n)
            order = np.argsort(expected - floors, kind="stable")
            counts[order[: -shortfall]] -= 1
        return counts

    def state_count_items(self) -> List[Tuple[int, int]]:
        counts = self.count_vector()
        return [
            (int(sid), int(counts[sid])) for sid in np.flatnonzero(counts > 0)
        ]

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def _state_snapshot(self) -> dict:
        return {
            "fractions": self._y.tolist(),
            "step_size": self._h,
        }

    def _state_restore(self, payload: dict) -> None:
        fractions = np.asarray(payload["fractions"], dtype=np.float64)
        missing = len(self.encoder) - fractions.shape[0]
        if missing > 0:
            fractions = np.concatenate([fractions, np.zeros(missing)])
        self._y = fractions
        self._h = float(payload["step_size"])
        self._channels.clear()
