"""ASCII charts.

Minimal, dependency-free renderings used by the CLI and the examples:

* :func:`sparkline` — a one-line summary of a series,
* :func:`ascii_bar_chart` — labelled horizontal bars (used for coin levels,
  drag groups, role censuses),
* :func:`ascii_line_plot` — a crude scatter/line plot on a character grid
  (used for time-versus-n scaling curves).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = ["sparkline", "ascii_bar_chart", "ascii_line_plot"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """Render ``values`` as a unicode sparkline (empty input → empty string)."""
    values = [float(v) for v in values]
    if not values:
        return ""
    low = min(values)
    high = max(values)
    if math.isclose(low, high):
        return _SPARK_LEVELS[0] * len(values)
    span = high - low
    chars = []
    for value in values:
        index = int((value - low) / span * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[index])
    return "".join(chars)


def ascii_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal bar chart with one row per (label, value)."""
    if len(labels) != len(values):
        raise ConfigurationError(
            f"labels and values must have equal length, got {len(labels)} and {len(values)}"
        )
    if width < 1:
        raise ConfigurationError(f"width must be >= 1, got {width}")
    if not labels:
        return "(empty chart)"
    peak = max(max(values), 1e-12)
    label_width = max(len(str(label)) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * max(0, int(round(width * float(value) / peak)))
        lines.append(f"{str(label).rjust(label_width)} | {bar} {value:g}{unit}")
    return "\n".join(lines)


def ascii_line_plot(
    points: Sequence[Tuple[float, float]],
    *,
    width: int = 60,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
    logx: bool = False,
) -> str:
    """Scatter plot of ``(x, y)`` points on a ``width × height`` grid."""
    if width < 8 or height < 4:
        raise ConfigurationError("plot area must be at least 8x4 characters")
    points = [(float(x), float(y)) for x, y in points]
    if not points:
        return "(no data)"

    def x_transform(value: float) -> float:
        return math.log2(value) if logx else value

    xs = [x_transform(x) for x, _ in points]
    ys = [y for _, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    if math.isclose(x_low, x_high):
        x_high = x_low + 1.0
    if math.isclose(y_low, y_high):
        y_high = y_low + 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for (x, y), tx in zip(points, xs):
        column = int(round((tx - x_low) / (x_high - x_low) * (width - 1)))
        row = int(round((y - y_low) / (y_high - y_low) * (height - 1)))
        grid[height - 1 - row][column] = "*"

    lines = [f"{y_label} (from {y_low:g} to {y_high:g})"]
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    axis_label = f"{x_label} (log2 scale)" if logx else x_label
    lines.append(f" {axis_label}: {min(x for x, _ in points):g} .. {max(x for x, _ in points):g}")
    return "\n".join(lines)
