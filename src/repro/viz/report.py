"""Rendering of experiment results for the terminal.

:func:`render_report` combines the tables of an
:class:`~repro.experiments.runner.ExperimentResult` with, where it makes the
shape easier to see, a small ASCII chart derived from the table's numeric
columns.  The function is deliberately forgiving: charts are an optional
garnish, so any table it does not know how to chart is simply printed as a
table.
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.runner import ExperimentResult, ExperimentTable
from repro.viz.ascii import ascii_bar_chart

__all__ = ["render_report"]


def _numeric(cell) -> Optional[float]:
    try:
        return float(str(cell).split()[0].replace("±", ""))
    except (ValueError, IndexError):
        return None


def _chart_for(table: ExperimentTable) -> Optional[str]:
    """A bar chart of the first numeric column keyed by the first column."""
    if len(table.headers) < 2 or not table.rows:
        return None
    # Find the first column (beyond the first) where every row is numeric.
    for column in range(1, len(table.headers)):
        values = [_numeric(row[column]) for row in table.rows]
        if all(value is not None for value in values):
            labels = [str(row[0]) for row in table.rows]
            chart = ascii_bar_chart(labels, [float(v) for v in values], width=36)
            return f"[{table.headers[column]}]\n{chart}"
    return None


def render_report(result: ExperimentResult, *, charts: bool = True) -> str:
    """Render an experiment result as text, optionally with ASCII charts."""
    parts: List[str] = [result.to_text()]
    if charts:
        for table in result.tables:
            chart = _chart_for(table)
            if chart and len(table.rows) >= 3:
                parts.append("")
                parts.append(f"-- chart: {table.name} --")
                parts.append(chart)
    return "\n".join(parts)
