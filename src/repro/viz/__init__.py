"""Text-based visualisation.

The execution environment has no plotting stack, so "figures" are rendered
as ASCII charts and tables: good enough to eyeball the shapes the paper's
figures convey (geometric decay of coin levels, the fast-elimination
staircase, the slowing drag ticks) directly in a terminal or a markdown
document.
"""

from repro.viz.ascii import ascii_bar_chart, ascii_line_plot, sparkline
from repro.viz.report import render_report

__all__ = ["ascii_bar_chart", "ascii_line_plot", "sparkline", "render_report"]
