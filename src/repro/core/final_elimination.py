"""Final-elimination epoch: the drag counter (Section 7).

After fast elimination, ``O(log n)`` active candidates remain and every
round they flip the almost-fair level-0 coin; losers become passive.  Two
extra rules make this last phase both fast *in expectation* and safe
(Las Vegas):

* **Rule (10)** — an *active* candidate that flipped heads and meets a
  ``high`` inhibitor of its own drag value advances its drag by one.  The
  inhibitor sub-group of drag ``x`` has size ``≈ n·4^{-x}`` and is only
  elevated to ``high`` by active candidates of drag ``x`` (rule (8) in
  :mod:`repro.core.inhibitors`), so consecutive drag increments are spaced
  ``Θ(4^x log n)`` parallel time apart (Lemma 7.2): the drag counter is a
  clock that slows down exponentially.
* **Rule (9)** — a candidate that meets a leader-role agent with a strictly
  higher drag becomes withdrawn and adopts the higher drag value (so the
  value keeps propagating).  Seeing a higher drag is *evidence that an
  active candidate existed after the observer fell behind*, which is what
  makes withdrawal safe even if the phase clock desynchronises: the alive
  candidate with the maximum drag can never be withdrawn by this rule.

Both rules are restricted to candidates that have finished the fast
elimination schedule (``cnt == 0``); drag is meaningless before that.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.context import InteractionContext
from repro.core.params import GSUParams
from repro.core.state import GSUAgentState
from repro.types import Elevation, Flip, LeaderMode, Role

__all__ = ["apply_drag_rules"]


def apply_drag_rules(
    responder: GSUAgentState,
    initiator: GSUAgentState,
    ctx: InteractionContext,
    params: GSUParams,
) -> Tuple[GSUAgentState, GSUAgentState]:
    """Apply rules (9) and (10) to a responder leader candidate."""
    if responder.role != Role.LEADER:
        return responder, initiator

    # ------------------------------------------------------------------
    # Rule (9): withdraw behind a strictly higher drag value (and adopt it).
    # ------------------------------------------------------------------
    if (
        initiator.role == Role.LEADER
        and initiator.drag > responder.drag
        and responder.leader_mode != LeaderMode.WITHDRAWN
    ):
        return (
            responder.evolve(
                leader_mode=LeaderMode.WITHDRAWN,
                drag=initiator.drag,
                cnt=0,
                flip=Flip.NONE,
                void=True,
            ),
            initiator,
        )

    # Withdrawn carriers also keep propagating the maximum drag they see.
    if (
        initiator.role == Role.LEADER
        and initiator.drag > responder.drag
        and responder.leader_mode == LeaderMode.WITHDRAWN
    ):
        return responder.evolve(drag=initiator.drag), initiator

    # ------------------------------------------------------------------
    # Rule (10): active + heads + high inhibitor of the same drag -> drag+1.
    # ------------------------------------------------------------------
    if (
        responder.leader_mode == LeaderMode.ACTIVE
        and responder.cnt == 0
        and responder.flip == Flip.HEADS
        and responder.drag < params.psi
        and initiator.role == Role.INHIBITOR
        and initiator.elevation == Elevation.HIGH
        and initiator.drag == responder.drag
    ):
        return responder.evolve(drag=responder.drag + 1), initiator

    return responder, initiator
