"""Monitoring helpers for the GSU19 protocol.

The experiment harness needs to look *inside* a running simulation: how many
candidates are still active after each biased-coin application (Figure 2),
when each drag value first appears (Figure 3), how large the junta is
(Figure 1 / Lemma 5.3), how many agents failed to get a role (Lemma 4.1).
This module provides metric functions over an engine plus the recorders that
collect the corresponding time series without touching the hot loop.

Every metric is backed by a compiled state-property view
(:mod:`repro.engine.views`): the per-state predicate or field access is
evaluated once per state id on the protocol's shared transition table, and
each metric call is then an ``O(occupied)`` vector reduction over the
engine's count vector — no per-check decode loops, which is what makes
monitored GSU19 runs at ``n = 10^7``–``10^8`` (and the lemma sweeps built
on them) cost roughly the same as unmonitored ones.  The view constants
below are module-level on purpose: shared across every engine, protocol
instance and recorder, each table compiles them once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.state import is_active_leader, is_alive_leader
from repro.engine.base import BaseEngine
from repro.engine.recorder import Recorder
from repro.engine.views import CategoricalView, PredicateView, ValueView
from repro.types import Elevation, LeaderMode, Role

__all__ = [
    "ROLE_VIEW",
    "ACTIVE_LEADER_VIEW",
    "ALIVE_LEADER_VIEW",
    "UNINITIALISED_VIEW",
    "FINAL_EPOCH_LEADER_VIEW",
    "LEADER_DRAG_VIEW",
    "ACTIVE_CNT_VIEW",
    "INHIBITOR_DRAG_VIEW",
    "HIGH_INHIBITOR_DRAG_VIEW",
    "role_census",
    "active_leader_count",
    "alive_leader_count",
    "uninitialised_count",
    "max_leader_drag",
    "min_active_cnt",
    "inhibitor_drag_census",
    "high_inhibitor_census",
    "FastEliminationTracker",
    "DragTickTracker",
    "RoleCensusRecorder",
]


# ----------------------------------------------------------------------
# Compiled views over GSUAgentState
# ----------------------------------------------------------------------
#: Which sub-population an agent belongs to (categories in ``Role`` order).
ROLE_VIEW = CategoricalView(
    "gsu-role", lambda state: state.role, categories=tuple(Role)
)

#: Active candidates (``L⟨A⟩``).
ACTIVE_LEADER_VIEW = PredicateView("gsu-active-leader", is_active_leader)

#: Alive candidates (``L⟨A⟩`` or ``L⟨P⟩`` — the leader-output agents).
ALIVE_LEADER_VIEW = PredicateView("gsu-alive-leader", is_alive_leader)

#: Agents still in role ``0`` or ``X`` (Lemma 4.1's quantity).
UNINITIALISED_VIEW = PredicateView(
    "gsu-uninitialised", lambda state: state.role in (Role.ZERO, Role.X)
)

#: Non-withdrawn candidates whose fast-elimination schedule has run out
#: (``cnt == 0`` — the final-elimination epoch of Figure 3).
FINAL_EPOCH_LEADER_VIEW = PredicateView(
    "gsu-final-epoch-leader",
    lambda state: (
        state.role == Role.LEADER
        and state.leader_mode != LeaderMode.WITHDRAWN
        and state.cnt == 0
    ),
)

#: Drag value of leader-role agents (inapplicable elsewhere).
LEADER_DRAG_VIEW = ValueView(
    "gsu-leader-drag",
    lambda state: state.drag if state.role == Role.LEADER else None,
)

#: Round counter of *active* candidates (inapplicable elsewhere).
ACTIVE_CNT_VIEW = ValueView(
    "gsu-active-cnt",
    lambda state: state.cnt if is_active_leader(state) else None,
)

#: Drag value of inhibitors (Lemma 7.1's grouping key).
INHIBITOR_DRAG_VIEW = ValueView(
    "gsu-inhibitor-drag",
    lambda state: state.drag if state.role == Role.INHIBITOR else None,
)

#: Drag value of ``high`` inhibitors only.
HIGH_INHIBITOR_DRAG_VIEW = ValueView(
    "gsu-high-inhibitor-drag",
    lambda state: (
        state.drag
        if state.role == Role.INHIBITOR and state.elevation == Elevation.HIGH
        else None
    ),
)


# ----------------------------------------------------------------------
# Metric functions (engine -> number / dict)
# ----------------------------------------------------------------------
def role_census(engine: BaseEngine) -> Dict[Role, int]:
    """Number of agents per role in the current configuration."""
    census: Dict[Role, int] = {role: 0 for role in Role}
    census.update(ROLE_VIEW.census(engine))
    return census


def active_leader_count(engine: BaseEngine) -> int:
    """Number of *active* candidates (``L⟨A⟩``)."""
    return ACTIVE_LEADER_VIEW.count(engine)


def alive_leader_count(engine: BaseEngine) -> int:
    """Number of *alive* candidates (``L⟨A⟩`` or ``L⟨P⟩``)."""
    return ALIVE_LEADER_VIEW.count(engine)


def uninitialised_count(engine: BaseEngine) -> int:
    """Number of agents still in role ``0`` or ``X`` (Lemma 4.1's quantity)."""
    return UNINITIALISED_VIEW.count(engine)


def max_leader_drag(engine: BaseEngine) -> int:
    """Largest drag value currently held by any leader-role agent."""
    return LEADER_DRAG_VIEW.max(engine, default=0)


def min_active_cnt(engine: BaseEngine) -> Optional[int]:
    """Smallest round counter among active candidates (``None`` if none)."""
    return ACTIVE_CNT_VIEW.min(engine, default=None)


def inhibitor_drag_census(engine: BaseEngine) -> Dict[int, int]:
    """Number of inhibitors per drag value (Lemma 7.1's ``D_ℓ``)."""
    return INHIBITOR_DRAG_VIEW.census(engine)


def high_inhibitor_census(engine: BaseEngine) -> Dict[int, int]:
    """Number of ``high`` inhibitors per drag value."""
    return HIGH_INHIBITOR_DRAG_VIEW.census(engine)


# ----------------------------------------------------------------------
# Recorders
# ----------------------------------------------------------------------
@dataclass
class FastEliminationTracker(Recorder):
    """Tracks the number of active candidates as the coin schedule advances.

    At every check point the tracker records the smallest ``cnt`` among
    active candidates together with the current number of active and alive
    candidates.  :meth:`survivors_per_cnt` post-processes the series into
    "active candidates remaining when the round with counter value ``cnt``
    was last observed", which is the series plotted in the paper's Figure 2
    (one point per biased-coin application).
    """

    views = (ACTIVE_CNT_VIEW, ACTIVE_LEADER_VIEW, ALIVE_LEADER_VIEW)

    times: List[float] = field(default_factory=list)
    cnt_values: List[Optional[int]] = field(default_factory=list)
    active_counts: List[int] = field(default_factory=list)
    alive_counts: List[int] = field(default_factory=list)

    def record(self, engine: BaseEngine) -> None:
        self.times.append(engine.parallel_time)
        self.cnt_values.append(min_active_cnt(engine))
        self.active_counts.append(active_leader_count(engine))
        self.alive_counts.append(alive_leader_count(engine))

    def reset(self) -> None:
        self.times.clear()
        self.cnt_values.clear()
        self.active_counts.clear()
        self.alive_counts.clear()

    def survivors_per_cnt(self) -> Dict[int, int]:
        """Active candidates observed at the last check of each ``cnt`` value."""
        survivors: Dict[int, int] = {}
        for cnt, active in zip(self.cnt_values, self.active_counts):
            if cnt is None:
                continue
            survivors[cnt] = active
        return survivors


@dataclass
class DragTickTracker(Recorder):
    """Records when each drag value first appears among leader-role agents.

    The gaps between consecutive first-appearance times are the empirical
    ``T_ℓ`` of Lemma 7.2 / Figure 3 (expressed in parallel time).  Because
    every leader candidate starts with drag 0 long before the drag machinery
    is in play, the drag-0 timestamp is taken as the moment the first
    candidate *enters the final-elimination epoch* (``cnt == 0``); the
    interval to the first drag-1 candidate is then the genuine first tick.
    """

    views = (FINAL_EPOCH_LEADER_VIEW, LEADER_DRAG_VIEW)

    first_seen: Dict[int, float] = field(default_factory=dict)

    def record(self, engine: BaseEngine) -> None:
        if 0 not in self.first_seen:
            if FINAL_EPOCH_LEADER_VIEW.count(engine) > 0:
                self.first_seen[0] = engine.parallel_time
        drag = max_leader_drag(engine)
        for value in range(1, drag + 1):
            self.first_seen.setdefault(value, engine.parallel_time)

    def reset(self) -> None:
        self.first_seen.clear()

    def tick_intervals(self) -> Dict[int, float]:
        """Parallel time between the first appearances of drag ``ℓ`` and ``ℓ+1``."""
        intervals: Dict[int, float] = {}
        levels = sorted(self.first_seen)
        for earlier, later in zip(levels, levels[1:]):
            if later == earlier + 1:
                intervals[earlier] = self.first_seen[later] - self.first_seen[earlier]
        return intervals


@dataclass
class RoleCensusRecorder(Recorder):
    """Records the role census over time (used for Lemma 4.1 and reports)."""

    views = (ROLE_VIEW,)

    times: List[float] = field(default_factory=list)
    censuses: List[Dict[Role, int]] = field(default_factory=list)

    def record(self, engine: BaseEngine) -> None:
        self.times.append(engine.parallel_time)
        self.censuses.append(role_census(engine))

    def reset(self) -> None:
        self.times.clear()
        self.censuses.clear()

    def series_for(self, role: Role) -> List[tuple]:
        """Time series of one role's population."""
        return [
            (time, census.get(role, 0))
            for time, census in zip(self.times, self.censuses)
        ]
