"""Monitoring helpers for the GSU19 protocol.

The experiment harness needs to look *inside* a running simulation: how many
candidates are still active after each biased-coin application (Figure 2),
when each drag value first appears (Figure 3), how large the junta is
(Figure 1 / Lemma 5.3), how many agents failed to get a role (Lemma 4.1).
This module provides metric functions over an engine plus the recorders that
collect the corresponding time series without touching the hot loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.state import GSUAgentState, is_active_leader, is_alive_leader
from repro.engine.base import BaseEngine
from repro.engine.recorder import Recorder
from repro.types import Elevation, LeaderMode, Role

__all__ = [
    "role_census",
    "active_leader_count",
    "alive_leader_count",
    "uninitialised_count",
    "max_leader_drag",
    "min_active_cnt",
    "inhibitor_drag_census",
    "high_inhibitor_census",
    "FastEliminationTracker",
    "DragTickTracker",
    "RoleCensusRecorder",
]


# ----------------------------------------------------------------------
# Metric functions (engine -> number / dict)
# ----------------------------------------------------------------------
def role_census(engine: BaseEngine) -> Dict[Role, int]:
    """Number of agents per role in the current configuration."""
    census: Dict[Role, int] = {role: 0 for role in Role}
    for sid, count in engine.state_count_items():
        state: GSUAgentState = engine.encoder.decode(sid)
        census[state.role] = census.get(state.role, 0) + count
    return census


def active_leader_count(engine: BaseEngine) -> int:
    """Number of *active* candidates (``L⟨A⟩``)."""
    return engine.count_where(is_active_leader)


def alive_leader_count(engine: BaseEngine) -> int:
    """Number of *alive* candidates (``L⟨A⟩`` or ``L⟨P⟩``)."""
    return engine.count_where(is_alive_leader)


def uninitialised_count(engine: BaseEngine) -> int:
    """Number of agents still in role ``0`` or ``X`` (Lemma 4.1's quantity)."""
    return engine.count_where(
        lambda state: state.role in (Role.ZERO, Role.X)
    )


def max_leader_drag(engine: BaseEngine) -> int:
    """Largest drag value currently held by any leader-role agent."""
    best = 0
    for sid, count in engine.state_count_items():
        state: GSUAgentState = engine.encoder.decode(sid)
        if count and state.role == Role.LEADER:
            best = max(best, state.drag)
    return best


def min_active_cnt(engine: BaseEngine) -> Optional[int]:
    """Smallest round counter among active candidates (``None`` if none)."""
    best: Optional[int] = None
    for sid, count in engine.state_count_items():
        state: GSUAgentState = engine.encoder.decode(sid)
        if count and is_active_leader(state):
            best = state.cnt if best is None else min(best, state.cnt)
    return best


def inhibitor_drag_census(engine: BaseEngine) -> Dict[int, int]:
    """Number of inhibitors per drag value (Lemma 7.1's ``D_ℓ``)."""
    census: Dict[int, int] = {}
    for sid, count in engine.state_count_items():
        state: GSUAgentState = engine.encoder.decode(sid)
        if count and state.role == Role.INHIBITOR:
            census[state.drag] = census.get(state.drag, 0) + count
    return census


def high_inhibitor_census(engine: BaseEngine) -> Dict[int, int]:
    """Number of ``high`` inhibitors per drag value."""
    census: Dict[int, int] = {}
    for sid, count in engine.state_count_items():
        state: GSUAgentState = engine.encoder.decode(sid)
        if (
            count
            and state.role == Role.INHIBITOR
            and state.elevation == Elevation.HIGH
        ):
            census[state.drag] = census.get(state.drag, 0) + count
    return census


# ----------------------------------------------------------------------
# Recorders
# ----------------------------------------------------------------------
@dataclass
class FastEliminationTracker(Recorder):
    """Tracks the number of active candidates as the coin schedule advances.

    At every check point the tracker records the smallest ``cnt`` among
    active candidates together with the current number of active and alive
    candidates.  :meth:`survivors_per_cnt` post-processes the series into
    "active candidates remaining when the round with counter value ``cnt``
    was last observed", which is the series plotted in the paper's Figure 2
    (one point per biased-coin application).
    """

    times: List[float] = field(default_factory=list)
    cnt_values: List[Optional[int]] = field(default_factory=list)
    active_counts: List[int] = field(default_factory=list)
    alive_counts: List[int] = field(default_factory=list)

    def record(self, engine: BaseEngine) -> None:
        self.times.append(engine.parallel_time)
        self.cnt_values.append(min_active_cnt(engine))
        self.active_counts.append(active_leader_count(engine))
        self.alive_counts.append(alive_leader_count(engine))

    def reset(self) -> None:
        self.times.clear()
        self.cnt_values.clear()
        self.active_counts.clear()
        self.alive_counts.clear()

    def survivors_per_cnt(self) -> Dict[int, int]:
        """Active candidates observed at the last check of each ``cnt`` value."""
        survivors: Dict[int, int] = {}
        for cnt, active in zip(self.cnt_values, self.active_counts):
            if cnt is None:
                continue
            survivors[cnt] = active
        return survivors


@dataclass
class DragTickTracker(Recorder):
    """Records when each drag value first appears among leader-role agents.

    The gaps between consecutive first-appearance times are the empirical
    ``T_ℓ`` of Lemma 7.2 / Figure 3 (expressed in parallel time).  Because
    every leader candidate starts with drag 0 long before the drag machinery
    is in play, the drag-0 timestamp is taken as the moment the first
    candidate *enters the final-elimination epoch* (``cnt == 0``); the
    interval to the first drag-1 candidate is then the genuine first tick.
    """

    first_seen: Dict[int, float] = field(default_factory=dict)

    def record(self, engine: BaseEngine) -> None:
        if 0 not in self.first_seen:
            entered_final_epoch = any(
                count > 0
                and (state := engine.encoder.decode(sid)).role == Role.LEADER
                and state.leader_mode != LeaderMode.WITHDRAWN
                and state.cnt == 0
                for sid, count in engine.state_count_items()
            )
            if entered_final_epoch:
                self.first_seen[0] = engine.parallel_time
        drag = max_leader_drag(engine)
        for value in range(1, drag + 1):
            self.first_seen.setdefault(value, engine.parallel_time)

    def reset(self) -> None:
        self.first_seen.clear()

    def tick_intervals(self) -> Dict[int, float]:
        """Parallel time between the first appearances of drag ``ℓ`` and ``ℓ+1``."""
        intervals: Dict[int, float] = {}
        levels = sorted(self.first_seen)
        for earlier, later in zip(levels, levels[1:]):
            if later == earlier + 1:
                intervals[earlier] = self.first_seen[later] - self.first_seen[earlier]
        return intervals


@dataclass
class RoleCensusRecorder(Recorder):
    """Records the role census over time (used for Lemma 4.1 and reports)."""

    times: List[float] = field(default_factory=list)
    censuses: List[Dict[Role, int]] = field(default_factory=list)

    def record(self, engine: BaseEngine) -> None:
        self.times.append(engine.parallel_time)
        self.censuses.append(role_census(engine))

    def reset(self) -> None:
        self.times.clear()
        self.censuses.clear()

    def series_for(self, role: Role) -> List[tuple]:
        """Time series of one role's population."""
        return [
            (time, census.get(role, 0))
            for time, census in zip(self.times, self.censuses)
        ]
