"""Slow backup protocol with a seniority order (Section 8, rule (11)).

Running in the background of all three epochs is the constant-space leader
election of Angluin et al. (PODC 2004): whenever two *alive* candidates
(states ``L⟨A⟩`` or ``L⟨P⟩``) interact directly, exactly one of them
survives.  This guarantees a unique leader is eventually elected even if the
phase clock desynchronises or every candidate goes passive, at the cost of
``O(n)`` parallel time — which only matters in the negligible-probability
failure branch.

Ties are broken by a **seniority order** (higher drag ≻ active over passive
≻ smaller ``cnt`` ≻ heads ≻ none ≻ tails; see
:func:`repro.core.state.seniority_key`) so the backup can never eliminate
the alive candidate carrying the maximum drag — the invariant behind
Lemma 8.1.  When the two candidates compare equal the responder withdraws,
so every direct encounter eliminates exactly one of the two, as in the
original constant-space protocol.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.context import InteractionContext
from repro.core.params import GSUParams
from repro.core.state import GSUAgentState, is_alive_leader, seniority_key
from repro.types import Flip, LeaderMode

__all__ = ["apply_slow_backup"]


def apply_slow_backup(
    responder: GSUAgentState,
    initiator: GSUAgentState,
    ctx: InteractionContext,
    params: GSUParams,
) -> Tuple[GSUAgentState, GSUAgentState]:
    """Rule (11): on a direct encounter of two alive candidates, the junior
    one withdraws (the responder withdraws on a perfect tie)."""
    if not (is_alive_leader(responder) and is_alive_leader(initiator)):
        return responder, initiator

    responder_key = seniority_key(responder)
    initiator_key = seniority_key(initiator)

    if responder_key > initiator_key:
        demoted = initiator.evolve(
            leader_mode=LeaderMode.WITHDRAWN,
            cnt=0,
            flip=Flip.NONE,
            void=True,
            drag=max(initiator.drag, responder.drag),
        )
        return responder, demoted

    demoted = responder.evolve(
        leader_mode=LeaderMode.WITHDRAWN,
        cnt=0,
        flip=Flip.NONE,
        void=True,
        drag=max(initiator.drag, responder.drag),
    )
    return demoted, initiator
