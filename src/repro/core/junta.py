"""Coin preprocessing: level formation and junta election (Section 5).

Every coin starts at ``level = 0`` in the ``advancing`` mode and repeatedly
applies the following rules when it acts as responder (they closely follow
the junta-formation protocol of GS18):

* meeting a non-coin stops the coin at its current level,
* meeting a coin of a *lower* level stops it as well,
* meeting a coin of level ``≥`` its own advances it by one level (while the
  level is below ``Φ``).

The number ``C_ℓ`` of coins reaching level ``ℓ`` therefore roughly squares
downwards (``C_{ℓ+1} ≈ C_ℓ²/n``, Lemmas 5.1–5.2), and the coins that reach
the top level ``Φ`` — between ``n^0.45`` and ``n^0.77`` of them whp
(Lemma 5.3) — become the **junta** that powers the phase clock.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.context import InteractionContext
from repro.core.params import GSUParams
from repro.core.state import GSUAgentState
from repro.types import CoinMode, Role

__all__ = ["apply_coin_preprocessing"]


def apply_coin_preprocessing(
    responder: GSUAgentState,
    initiator: GSUAgentState,
    ctx: InteractionContext,
    params: GSUParams,
) -> Tuple[GSUAgentState, GSUAgentState]:
    """Advance or stop the responder coin's level."""
    if responder.role != Role.COIN or responder.coin_mode != CoinMode.ADVANCING:
        return responder, initiator

    level = responder.level

    # Meeting anything that is not a coin stops level growth.
    if initiator.role != Role.COIN:
        return responder.evolve(coin_mode=CoinMode.STOPPED), initiator

    # Meeting a coin of a strictly lower level stops level growth.
    if initiator.level < level:
        return responder.evolve(coin_mode=CoinMode.STOPPED), initiator

    # Meeting a coin of level >= own advances by one, up to Φ.  Reaching Φ
    # freezes the coin (it "stops growing") and promotes it into the junta —
    # membership is implied by ``level == Φ`` and needs no extra field.
    if level < params.phi:
        new_level = level + 1
        new_mode = (
            CoinMode.STOPPED if new_level >= params.phi else CoinMode.ADVANCING
        )
        return responder.evolve(level=new_level, coin_mode=new_mode), initiator

    # Already at Φ while still marked advancing (can only happen for
    # degenerate parameters); freeze defensively.
    return responder.evolve(coin_mode=CoinMode.STOPPED), initiator
