"""Leader-candidate round machinery: reset, coin flips, heads epidemic.

These rules implement the per-round elimination cycle shared by the fast
elimination epoch (Section 6) and the final elimination epoch (Section 7):

* **Round reset** (rule (3) and its final-elimination analogue): when a
  leader candidate's clock passes through 0 it starts a new round — the
  round counter ``cnt`` is decremented while positive, the flip result is
  cleared and the round is marked void.
* **Coin flip** (rules (4)/(5), ``early→``): in the first half of a round an
  *active* candidate that has not flipped yet evaluates the scheduled
  synthetic coin against its interaction partner: heads iff the initiator is
  a coin of level ``≥ γ(cnt)`` (level 0 during final elimination).  Heads
  additionally clears the candidate's ``void`` flag, seeding the epidemic.
* **Heads epidemic** (rules (6)/(7), ``late→``): in the second half of the
  round the information "someone flipped heads" spreads among leader
  candidates; an active candidate that flipped tails and learns of a heads
  becomes *passive*.

The fast-elimination epoch applies the biased coins ``Φ, Φ, Φ, Φ, Φ−1, Φ−1,
…, 1, 1`` (one per round, via the countdown ``cnt``), reducing the number of
active candidates from ``≈ n/2`` to ``O(log n)`` whp (Lemma 6.2).
"""

from __future__ import annotations

from typing import Tuple

from repro.core.context import InteractionContext
from repro.core.params import GSUParams
from repro.core.state import GSUAgentState
from repro.types import Flip, LeaderMode, Role

__all__ = ["apply_round_reset", "apply_coin_flip", "apply_heads_epidemic"]


def apply_round_reset(
    responder: GSUAgentState,
    initiator: GSUAgentState,
    ctx: InteractionContext,
    params: GSUParams,
) -> Tuple[GSUAgentState, GSUAgentState]:
    """Rule (3) / the final-elimination reset: start a new round at a pass
    through 0 (decrement ``cnt`` while positive, clear flip, mark void)."""
    if not ctx.passed_zero or responder.role != Role.LEADER:
        return responder, initiator
    if responder.leader_mode == LeaderMode.WITHDRAWN:
        return responder, initiator
    new_cnt = responder.cnt - 1 if responder.cnt >= 1 else 0
    if (
        new_cnt == responder.cnt
        and responder.flip == Flip.NONE
        and responder.void
    ):
        return responder, initiator
    return (
        responder.evolve(cnt=new_cnt, flip=Flip.NONE, void=True),
        initiator,
    )


def apply_coin_flip(
    responder: GSUAgentState,
    initiator: GSUAgentState,
    ctx: InteractionContext,
    params: GSUParams,
) -> Tuple[GSUAgentState, GSUAgentState]:
    """Rules (4)/(5): flip the scheduled synthetic coin (``early→``)."""
    if not ctx.early or responder.role != Role.LEADER:
        return responder, initiator
    if responder.leader_mode != LeaderMode.ACTIVE:
        return responder, initiator
    if responder.flip != Flip.NONE:
        return responder, initiator
    # No coin flips during the very first round (cnt == 2Φ+3): roles and coin
    # levels are still stabilising.
    if responder.cnt == params.initial_cnt:
        return responder, initiator

    level = params.coin_level_for_cnt(responder.cnt)
    heads = initiator.role == Role.COIN and initiator.level >= level
    if heads:
        return responder.evolve(flip=Flip.HEADS, void=False), initiator
    return responder.evolve(flip=Flip.TAILS), initiator


def apply_heads_epidemic(
    responder: GSUAgentState,
    initiator: GSUAgentState,
    ctx: InteractionContext,
    params: GSUParams,
) -> Tuple[GSUAgentState, GSUAgentState]:
    """Rules (6)/(7): spread "someone flipped heads" and demote tails
    flippers to passive (``late→``)."""
    if not ctx.late or responder.role != Role.LEADER:
        return responder, initiator
    if responder.leader_mode == LeaderMode.WITHDRAWN:
        return responder, initiator
    if not responder.void:
        return responder, initiator
    if initiator.role != Role.LEADER or initiator.void:
        return responder, initiator
    if initiator.leader_mode == LeaderMode.WITHDRAWN:
        return responder, initiator

    # Rule (6): an active candidate that flipped tails learns someone flipped
    # heads and becomes passive.
    if responder.leader_mode == LeaderMode.ACTIVE and responder.flip == Flip.TAILS:
        return (
            responder.evolve(leader_mode=LeaderMode.PASSIVE, void=False),
            initiator,
        )
    # Rule (7): pure information spreading.
    return responder.evolve(void=False), initiator
