"""Inhibitor sub-population: drag preprocessing and slowed-down signalling
(Section 7 of the paper).

Inhibitors play no part in electing the leader directly; they implement the
**slowing-down drag counter** that makes the final-elimination epoch safe.

*Preprocessing.*  Each inhibitor counts how many consecutive "successful
synthetic coin flips" it obtains right after the clock starts: following
Lemma 7.1 (``p = n_C/n = 1/4``, ``D_ℓ = n·4^{-ℓ}``), a flip succeeds when the
interaction partner is a **coin**, and the first failure freezes the
counter.  This stratifies the inhibitors into sub-groups of expected size
``n·4^{-ℓ}`` for ``ℓ = 0 … Ψ``.  (The displayed rule in the paper increments
on a *non*-coin partner, which contradicts Lemma 7.1 and its proof; we follow
the lemma — see DESIGN.md.)  As printed in the paper, the preprocessing rules
carry the ``late→`` qualifier, which also guarantees they only fire once the
phase clock is actually running.

*Slowed-down signalling* (rule (8)).  A *stopped* inhibitor of drag ``x`` in
the ``low`` elevation becomes ``high`` when it meets an **active** leader
whose drag is also ``x``; ``high`` then spreads among the drag-``x``
inhibitors by one-way epidemic.  Because there are only ``≈ n·4^{-x}``
inhibitors of drag ``x``, this epidemic takes ``Θ(4^x log n)`` parallel time
— the exponentially slowing "tick" of Lemma 7.2 — and an active leader that
meets a ``high`` inhibitor of its own drag advances its drag by one
(rule (10), implemented in :mod:`repro.core.final_elimination`).
"""

from __future__ import annotations

from typing import Tuple

from repro.core.context import InteractionContext
from repro.core.params import GSUParams
from repro.core.state import GSUAgentState
from repro.types import CoinMode, Elevation, LeaderMode, Role

__all__ = ["apply_inhibitor_rules"]


def apply_inhibitor_rules(
    responder: GSUAgentState,
    initiator: GSUAgentState,
    ctx: InteractionContext,
    params: GSUParams,
) -> Tuple[GSUAgentState, GSUAgentState]:
    """Apply drag preprocessing and the slowed-down communication rules to a
    responder inhibitor."""
    if responder.role != Role.INHIBITOR:
        return responder, initiator

    # ------------------------------------------------------------------
    # Drag preprocessing (late→): count consecutive coin meetings.
    # ------------------------------------------------------------------
    if responder.inhibitor_mode == CoinMode.ADVANCING and ctx.late:
        if initiator.role == Role.COIN:
            if responder.drag < params.psi:
                return responder.evolve(drag=responder.drag + 1), initiator
            return responder.evolve(inhibitor_mode=CoinMode.STOPPED), initiator
        return responder.evolve(inhibitor_mode=CoinMode.STOPPED), initiator

    # ------------------------------------------------------------------
    # Slowed-down inhibitor communication (rule (8)).
    # ------------------------------------------------------------------
    if (
        responder.inhibitor_mode == CoinMode.STOPPED
        and responder.elevation == Elevation.LOW
    ):
        # Activation by an active leader of the same drag value.  The leader
        # must have entered the final-elimination epoch (cnt == 0): the drag
        # machinery plays no role during fast elimination.
        if (
            initiator.role == Role.LEADER
            and initiator.leader_mode == LeaderMode.ACTIVE
            and initiator.cnt == 0
            and initiator.drag == responder.drag
        ):
            return responder.evolve(elevation=Elevation.HIGH), initiator
        # One-way epidemic among inhibitors of the same drag value.
        if (
            initiator.role == Role.INHIBITOR
            and initiator.drag == responder.drag
            and initiator.elevation == Elevation.HIGH
        ):
            return responder.evolve(elevation=Elevation.HIGH), initiator

    return responder, initiator
