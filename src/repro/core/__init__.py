"""The paper's contribution: the GSU19 leader-election protocol.

Sub-modules map one-to-one onto the paper's sections:

======================================  =====================================
module                                  paper section
======================================  =====================================
:mod:`repro.core.params`                non-uniform parameters (Γ, Φ, Ψ)
:mod:`repro.core.state`                 agent states and sub-population roles
:mod:`repro.core.roles`                 Section 4 — initialisation epoch
:mod:`repro.core.junta`                 Section 5 — coins and junta formation
:mod:`repro.core.inhibitors`            Section 7 — inhibitors / drag groups
:mod:`repro.core.fast_elimination`      Section 6 — fast elimination rounds
:mod:`repro.core.final_elimination`     Section 7 — drag counter rules
:mod:`repro.core.backup`                Section 8 — slow backup, seniority
:mod:`repro.core.protocol`              assembled protocol (Theorem 8.2)
:mod:`repro.core.monitor`               experiment-facing metrics/recorders
:mod:`repro.core.theory`                closed-form predictions of the lemmas
======================================  =====================================
"""

from repro.core.params import GSUParams
from repro.core.state import (
    GSUAgentState,
    coin_state,
    deactivated_state,
    inhibitor_state,
    intermediate_state,
    is_active_leader,
    is_alive_leader,
    leader_state,
    seniority_key,
    zero_state,
)
from repro.core.protocol import GSULeaderElection
from repro.core import monitor, theory

__all__ = [
    "GSUParams",
    "GSUAgentState",
    "GSULeaderElection",
    "zero_state",
    "intermediate_state",
    "deactivated_state",
    "coin_state",
    "inhibitor_state",
    "leader_state",
    "is_alive_leader",
    "is_active_leader",
    "seniority_key",
    "monitor",
    "theory",
]
