"""Agent states of the GSU19 protocol.

Every agent carries the same frozen dataclass :class:`GSUAgentState`; the
``role`` field says which sub-population the agent belongs to and which of
the remaining fields are meaningful.  Fields that are irrelevant for a role
are always kept at their canonical defaults (the constructor helpers below
enforce this), so the number of *distinct* states that ever occur matches
the protocol's true space usage:

====================  =========================================================
role                  meaningful fields
====================  =========================================================
``ZERO`` / ``X``      ``phase`` (the agent only follows the clock)
``DEACTIVATED``       ``phase``
``COIN``              ``phase``, ``level`` (0…Φ), ``coin_mode``
``INHIBITOR``         ``phase``, ``drag`` (0…Ψ), ``inhibitor_mode``, ``elevation``
``LEADER``            ``phase``, ``leader_mode``, ``cnt``, ``flip``, ``void``,
                      ``drag``
====================  =========================================================

The paper's space bound of ``O(log log n)`` states per agent corresponds to
the per-role products above: the clock contributes the constant ``Γ``, the
level / drag / cnt counters each contribute ``O(log log n)`` values, and a
leader never uses ``cnt`` and ``drag`` at the same time (``cnt > 0`` during
fast elimination implies ``drag = 0``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.types import CoinMode, Elevation, Flip, LeaderMode, Role

__all__ = [
    "GSUAgentState",
    "zero_state",
    "intermediate_state",
    "deactivated_state",
    "coin_state",
    "inhibitor_state",
    "leader_state",
    "is_alive_leader",
    "is_active_leader",
    "seniority_key",
]


@dataclass(frozen=True)
class GSUAgentState:
    """Complete state of one agent in the GSU19 protocol."""

    role: Role = Role.ZERO
    phase: int = 0
    # --- coin fields -------------------------------------------------
    level: int = 0
    coin_mode: CoinMode = CoinMode.ADVANCING
    # --- inhibitor fields --------------------------------------------
    drag: int = 0
    inhibitor_mode: CoinMode = CoinMode.ADVANCING
    elevation: Elevation = Elevation.LOW
    # --- leader fields -----------------------------------------------
    leader_mode: LeaderMode = LeaderMode.ACTIVE
    cnt: int = 0
    flip: Flip = Flip.NONE
    void: bool = True

    # ------------------------------------------------------------------
    def with_phase(self, phase: int) -> "GSUAgentState":
        """Copy of this state with a different clock phase."""
        if phase == self.phase:
            return self
        return replace(self, phase=phase)

    def evolve(self, **changes) -> "GSUAgentState":
        """Copy of this state with the given field changes."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    @property
    def is_coin(self) -> bool:
        """Whether the agent belongs to the coin sub-population ``C``."""
        return self.role == Role.COIN

    @property
    def is_inhibitor(self) -> bool:
        """Whether the agent belongs to the inhibitor sub-population ``I``."""
        return self.role == Role.INHIBITOR

    @property
    def is_leader_candidate(self) -> bool:
        """Whether the agent belongs to the leader sub-population ``L``."""
        return self.role == Role.LEADER

    @property
    def is_uninitialised(self) -> bool:
        """Whether the agent has not yet received a working role."""
        return self.role in (Role.ZERO, Role.X)

    def is_junta(self, phi: int) -> bool:
        """Whether the agent is a clock leader (a coin at the top level)."""
        return self.role == Role.COIN and self.level >= phi

    def describe(self) -> str:
        """Compact human-readable rendering used in traces."""
        if self.role == Role.COIN:
            return f"C(phase={self.phase}, level={self.level}, {self.coin_mode.name})"
        if self.role == Role.INHIBITOR:
            return (
                f"I(phase={self.phase}, drag={self.drag}, "
                f"{self.inhibitor_mode.name}, {self.elevation.name})"
            )
        if self.role == Role.LEADER:
            return (
                f"L(phase={self.phase}, {self.leader_mode.name}, cnt={self.cnt}, "
                f"{self.flip.name}, void={self.void}, drag={self.drag})"
            )
        return f"{self.role.name}(phase={self.phase})"


# ----------------------------------------------------------------------
# Canonical constructors (keep irrelevant fields at defaults)
# ----------------------------------------------------------------------
def zero_state(phase: int = 0) -> GSUAgentState:
    """The common initial state ``0``."""
    return GSUAgentState(role=Role.ZERO, phase=phase)


def intermediate_state(phase: int = 0) -> GSUAgentState:
    """The intermediate symmetry-breaking state ``X``."""
    return GSUAgentState(role=Role.X, phase=phase)


def deactivated_state(phase: int = 0) -> GSUAgentState:
    """A deactivated agent ``D`` (only relays the clock)."""
    return GSUAgentState(role=Role.DEACTIVATED, phase=phase)


def coin_state(
    phase: int = 0, level: int = 0, mode: CoinMode = CoinMode.ADVANCING
) -> GSUAgentState:
    """A coin agent ``C⟨level, mode⟩``."""
    return GSUAgentState(role=Role.COIN, phase=phase, level=level, coin_mode=mode)


def inhibitor_state(
    phase: int = 0,
    drag: int = 0,
    mode: CoinMode = CoinMode.ADVANCING,
    elevation: Elevation = Elevation.LOW,
) -> GSUAgentState:
    """An inhibitor agent ``I⟨drag, mode, elevation⟩``."""
    return GSUAgentState(
        role=Role.INHIBITOR,
        phase=phase,
        drag=drag,
        inhibitor_mode=mode,
        elevation=elevation,
    )


def leader_state(
    phase: int = 0,
    mode: LeaderMode = LeaderMode.ACTIVE,
    cnt: int = 0,
    flip: Flip = Flip.NONE,
    void: bool = True,
    drag: int = 0,
) -> GSUAgentState:
    """A leader-candidate agent ``L⟨mode, cnt, flip, void, drag⟩``."""
    return GSUAgentState(
        role=Role.LEADER,
        phase=phase,
        leader_mode=mode,
        cnt=cnt,
        flip=flip,
        void=void,
        drag=drag,
    )


# ----------------------------------------------------------------------
# Predicates and orderings
# ----------------------------------------------------------------------
def is_alive_leader(state: GSUAgentState) -> bool:
    """Whether the agent is an *alive* candidate (``L⟨A⟩`` or ``L⟨P⟩``).

    Alive candidates are exactly the agents mapped to the leader output.
    """
    return state.role == Role.LEADER and state.leader_mode in (
        LeaderMode.ACTIVE,
        LeaderMode.PASSIVE,
    )


def is_active_leader(state: GSUAgentState) -> bool:
    """Whether the agent is an *active* candidate (``L⟨A⟩``)."""
    return state.role == Role.LEADER and state.leader_mode == LeaderMode.ACTIVE


_FLIP_RANK = {Flip.HEADS: 2, Flip.NONE: 1, Flip.TAILS: 0}


def seniority_key(state: GSUAgentState) -> tuple:
    """Total preorder used by the slow-backup rule (rule 11).

    Higher key = more senior = survives a direct encounter.  The order gives
    preference to higher ``drag``, then active over passive, then smaller
    ``cnt`` (further along the schedule), then heads over none over tails.
    """
    return (
        state.drag,
        1 if state.leader_mode == LeaderMode.ACTIVE else 0,
        -state.cnt,
        _FLIP_RANK.get(state.flip, 0),
    )
