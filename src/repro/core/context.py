"""Per-interaction context shared by the GSU19 rule modules.

The paper annotates transition rules with arrows: plain ``→`` rules apply to
every interaction, ``→0`` rules apply when the responder's clock *passes
through 0* in this interaction, ``early→`` rules when both the start and end
phase lie in the early half ``[0, Γ/2)``, and ``late→`` rules when both lie
in the late half ``[Γ/2, Γ)``.  The protocol driver computes these three
booleans once per interaction (from the responder's clock update) and passes
them to every rule module through :class:`InteractionContext`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["InteractionContext"]


@dataclass(frozen=True)
class InteractionContext:
    """Clock-derived qualifiers of the current interaction.

    Attributes
    ----------
    passed_zero:
        The responder's phase wrapped past 0 in this interaction (``→0``).
    early:
        Start and end phase both in ``[0, Γ/2)`` (``early→``).
    late:
        Start and end phase both in ``[Γ/2, Γ)`` (``late→``).
    """

    passed_zero: bool = False
    early: bool = False
    late: bool = False
