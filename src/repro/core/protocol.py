"""The assembled GSU19 leader-election protocol.

:class:`GSULeaderElection` wires the rule modules of this package into a
single deterministic transition function, in the order the paper composes
them (non-conflicting rules of different sub-populations "happen in
parallel"; within one interaction we apply them to the responder in a fixed
order, which is equivalent because each rule family touches disjoint fields
or is guarded by the role):

1. phase-clock update of the responder (Section 3),
2. initialisation / role assignment and deactivation (Section 4, rules (1)–(2)),
3. coin preprocessing — level growth and junta formation (Section 5),
4. inhibitor drag preprocessing and slowed-down signalling (Section 7, rule (8)),
5. leader round reset (rule (3)), coin flip (rules (4)–(5)) and heads
   epidemic (rules (6)–(7)) — Sections 6 and 7,
6. drag adoption / increment (rules (9)–(10)) — Section 7,
7. the slow backup with seniority (Section 8, rule (11)).

The output map sends the *alive* candidates (``L⟨A⟩`` and ``L⟨P⟩``) to the
leader output and every other state to the follower output, exactly as in
Section 8.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.clocks.phase_clock import PhaseClockRules
from repro.core.backup import apply_slow_backup
from repro.core.context import InteractionContext
from repro.core.fast_elimination import (
    apply_coin_flip,
    apply_heads_epidemic,
    apply_round_reset,
)
from repro.core.final_elimination import apply_drag_rules
from repro.core.inhibitors import apply_inhibitor_rules
from repro.core.junta import apply_coin_preprocessing
from repro.core.params import GSUParams
from repro.core.roles import apply_initialisation
from repro.core.state import GSUAgentState, is_alive_leader, zero_state
from repro.engine.base import BaseEngine
from repro.engine.closure import reachable_states
from repro.engine.convergence import SingleLeader
from repro.engine.dispatch import COUNTBATCH_FORCE_N
from repro.engine.protocol import FOLLOWER_OUTPUT, LEADER_OUTPUT, PopulationProtocol
from repro.types import Role

__all__ = ["GSULeaderElection", "CLOSURE_MIN_N_HINT"]

#: Population-size hint from which :meth:`GSULeaderElection.canonical_states`
#: computes the reachable-state closure.  Tied by import to the dispatcher's
#: *force* threshold (:data:`repro.engine.dispatch.COUNTBATCH_FORCE_N`) —
#: the size from which GSU19 is actually count-dispatched.  Below it the
#: cost model always keeps GSU19 on the per-agent engines (the occupied
#: frontier prices count-batch out), so the ``Θ(K²)`` BFS (tens of seconds
#: for the default calibration, ``K ≈ 1.3–1.8·10³`` states) would be pure
#: construction overhead; those instances keep the lazily discovered state
#: space — which also keeps their seed-pinned count-engine trajectories
#: unchanged — and the count engines still run them fine via lazy growth
#: (or an explicit :meth:`GSULeaderElection.reachable_state_closure`).
CLOSURE_MIN_N_HINT = COUNTBATCH_FORCE_N

#: Reachable-closure cache.  Keyed by ``(gamma, phi, psi)`` — the only
#: parameters the transition function reads (``n_hint`` is validation-only),
#: so every protocol instance sharing a calibration shares one BFS.
_CLOSURE_CACHE: Dict[Tuple[int, int, int], Tuple[GSUAgentState, ...]] = {}


class GSULeaderElection(PopulationProtocol):
    """The ``O(log n · log log n)`` expected-time leader election of GSU19.

    Instances are deterministic transition machines parameterised by
    :class:`~repro.core.params.GSUParams`; all randomness comes from the
    simulation scheduler.  Use :meth:`for_population` to build an instance
    with parameters derived from the population size::

        protocol = GSULeaderElection.for_population(1 << 12)
        result = run_protocol(protocol, 1 << 12, seed=3, max_parallel_time=4000)
        assert result.leader_count == 1
    """

    name = "gsu19-leader-election"

    def __init__(self, params: GSUParams) -> None:
        self.params = params
        self.clock = PhaseClockRules(params.gamma)

    # ------------------------------------------------------------------
    @classmethod
    def for_population(
        cls,
        n: int,
        *,
        gamma: Optional[int] = None,
        phi: Optional[int] = None,
        psi: Optional[int] = None,
    ) -> "GSULeaderElection":
        """Build the protocol with parameters derived from ``n``."""
        return cls(GSUParams.from_population_size(n, gamma=gamma, phi=phi, psi=psi))

    # ------------------------------------------------------------------
    # PopulationProtocol interface
    # ------------------------------------------------------------------
    def initial_state(self, n: int) -> GSUAgentState:
        return zero_state()

    def initial_configuration(self, n: int) -> Sequence[GSUAgentState]:
        return [zero_state()] * n

    def initial_counts(self, n: int) -> Dict[GSUAgentState, int]:
        # O(k) form of the uniform start: the configuration-space engines
        # construct at n = 10^7-10^8 without an O(n) per-agent list.
        return {zero_state(): n}

    def canonical_states(self) -> Optional[Tuple[GSUAgentState, ...]]:
        """The reachable-state closure — for count-batch-scale instances.

        Every field of the frozen :class:`~repro.core.state.GSUAgentState` is
        bounded for fixed parameters (``phase < Γ``, ``level ≤ Φ``,
        ``drag ≤ Ψ``, ``cnt ≤ 2Φ+3``), so the set of states reachable from
        the all-zero start is finite and
        :func:`~repro.engine.closure.reachable_states` enumerates it exactly.
        The BFS costs ``Θ(K²)`` transition evaluations (tens of seconds at
        the default calibration) and is therefore only performed when the
        parameters were derived for a population at configuration-space
        scale (``n_hint >= CLOSURE_MIN_N_HINT``), where it is amortised
        against the run itself; the result is cached per ``(gamma, phi,
        psi)`` in a module-level cache shared by all instances.  Smaller
        instances return ``None`` and keep the lazily discovered state
        space, which leaves their seed-pinned count-engine trajectories
        byte-identical to earlier releases.  Call
        :meth:`reachable_state_closure` directly to compute the closure for
        a small instance explicitly.
        """
        if self.params.n_hint < CLOSURE_MIN_N_HINT:
            return None
        return self.reachable_state_closure()

    def occupied_states_hint(self) -> int:
        """Empirical envelope of the simultaneously occupied state count.

        Measured runs occupy far fewer states at a time than the reachable
        closure declares (40-75 at the default calibration across
        ``n = 10^6``-``10^7``, versus ``K ~ 1.8*10^3`` reachable): the phase
        clock keeps each sub-population's phases in a narrow moving band.
        The bound below — a few phases' worth of every role's field
        combinations — envelopes every measurement with ~2x headroom and
        feeds the dispatcher's count-batch cost model (engine choice only,
        never correctness).
        """
        return 4 * self.params.gamma + 4 * (self.params.phi + self.params.psi)

    def reachable_state_closure(self) -> Tuple[GSUAgentState, ...]:
        """Compute (and cache per ``(gamma, phi, psi)``) the reachable states.

        Unlike :meth:`canonical_states` this always runs the BFS, whatever
        the instance's ``n_hint`` — the explicit opt-in for state-space
        audits and for count-dispatching small calibrations.
        """
        key = (self.params.gamma, self.params.phi, self.params.psi)
        closure = _CLOSURE_CACHE.get(key)
        if closure is None:
            closure = tuple(reachable_states(self.transition, [zero_state()]))
            _CLOSURE_CACHE[key] = closure
        return closure

    def transition(self, responder: GSUAgentState, initiator: GSUAgentState):
        params = self.params
        clock = self.clock

        # 1. Phase-clock update of the responder.
        old_phase = responder.phase
        new_phase = clock.advance(
            old_phase, initiator.phase, responder.is_junta(params.phi)
        )
        ctx = InteractionContext(
            passed_zero=clock.passed_zero(old_phase, new_phase),
            early=clock.is_early(old_phase, new_phase),
            late=clock.is_late(old_phase, new_phase),
        )
        updated = responder.with_phase(new_phase)
        partner = initiator

        # 2. Initialisation / role assignment.  If a role was assigned (or an
        # agent deactivated) in this interaction, the agents do not also act
        # in their new roles within the same interaction — the remaining rule
        # families are skipped.  Without this, e.g. a freshly created coin
        # would immediately be stopped by its own creation partner.
        updated, partner = apply_initialisation(updated, partner, ctx, params)
        if updated.role != responder.role or partner.role != initiator.role:
            return updated, partner

        # 3-7. Sub-population rules (each family is role-guarded).
        updated, partner = apply_coin_preprocessing(updated, partner, ctx, params)
        updated, partner = apply_inhibitor_rules(updated, partner, ctx, params)
        updated, partner = apply_round_reset(updated, partner, ctx, params)
        updated, partner = apply_coin_flip(updated, partner, ctx, params)
        updated, partner = apply_heads_epidemic(updated, partner, ctx, params)
        updated, partner = apply_drag_rules(updated, partner, ctx, params)
        updated, partner = apply_slow_backup(updated, partner, ctx, params)
        return updated, partner

    def output(self, state: GSUAgentState) -> str:
        return LEADER_OUTPUT if is_alive_leader(state) else FOLLOWER_OUTPUT

    def describe_state(self, state: GSUAgentState) -> str:
        return state.describe()

    # ------------------------------------------------------------------
    # Convergence helpers
    # ------------------------------------------------------------------
    @staticmethod
    def no_uninitialised_agents(engine: BaseEngine) -> bool:
        """No agent is still in role ``0`` or ``X``.

        Once this holds, no new leader candidates can ever be created (rule
        (1a) is the only source of ``L`` agents), so "exactly one alive
        candidate" is a stable certificate of successful election.  The
        check is one vector reduction over the compiled uninitialised-role
        view (:data:`repro.core.monitor.UNINITIALISED_VIEW`), so evaluating
        it every convergence check costs O(occupied frontier) even at
        ``n = 10^8``.
        """
        from repro.core.monitor import UNINITIALISED_VIEW

        return UNINITIALISED_VIEW.count(engine) == 0

    def convergence(self) -> SingleLeader:
        """The convergence predicate used for this protocol's experiments."""
        from repro.core.monitor import UNINITIALISED_VIEW

        return SingleLeader(
            extra_condition=self.no_uninitialised_agents,
            description=(
                "exactly one alive leader candidate and no uninitialised agents"
            ),
            views=(UNINITIALISED_VIEW,),
        )
