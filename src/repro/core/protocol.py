"""The assembled GSU19 leader-election protocol.

:class:`GSULeaderElection` wires the rule modules of this package into a
single deterministic transition function, in the order the paper composes
them (non-conflicting rules of different sub-populations "happen in
parallel"; within one interaction we apply them to the responder in a fixed
order, which is equivalent because each rule family touches disjoint fields
or is guarded by the role):

1. phase-clock update of the responder (Section 3),
2. initialisation / role assignment and deactivation (Section 4, rules (1)–(2)),
3. coin preprocessing — level growth and junta formation (Section 5),
4. inhibitor drag preprocessing and slowed-down signalling (Section 7, rule (8)),
5. leader round reset (rule (3)), coin flip (rules (4)–(5)) and heads
   epidemic (rules (6)–(7)) — Sections 6 and 7,
6. drag adoption / increment (rules (9)–(10)) — Section 7,
7. the slow backup with seniority (Section 8, rule (11)).

The output map sends the *alive* candidates (``L⟨A⟩`` and ``L⟨P⟩``) to the
leader output and every other state to the follower output, exactly as in
Section 8.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.clocks.phase_clock import PhaseClockRules
from repro.core.backup import apply_slow_backup
from repro.core.context import InteractionContext
from repro.core.fast_elimination import (
    apply_coin_flip,
    apply_heads_epidemic,
    apply_round_reset,
)
from repro.core.final_elimination import apply_drag_rules
from repro.core.inhibitors import apply_inhibitor_rules
from repro.core.junta import apply_coin_preprocessing
from repro.core.params import GSUParams
from repro.core.roles import apply_initialisation
from repro.core.state import GSUAgentState, is_alive_leader, zero_state
from repro.engine.base import BaseEngine
from repro.engine.convergence import SingleLeader
from repro.engine.protocol import FOLLOWER_OUTPUT, LEADER_OUTPUT, PopulationProtocol
from repro.types import Role

__all__ = ["GSULeaderElection"]


class GSULeaderElection(PopulationProtocol):
    """The ``O(log n · log log n)`` expected-time leader election of GSU19.

    Instances are deterministic transition machines parameterised by
    :class:`~repro.core.params.GSUParams`; all randomness comes from the
    simulation scheduler.  Use :meth:`for_population` to build an instance
    with parameters derived from the population size::

        protocol = GSULeaderElection.for_population(1 << 12)
        result = run_protocol(protocol, 1 << 12, seed=3, max_parallel_time=4000)
        assert result.leader_count == 1
    """

    name = "gsu19-leader-election"

    def __init__(self, params: GSUParams) -> None:
        self.params = params
        self.clock = PhaseClockRules(params.gamma)

    # ------------------------------------------------------------------
    @classmethod
    def for_population(
        cls,
        n: int,
        *,
        gamma: Optional[int] = None,
        phi: Optional[int] = None,
        psi: Optional[int] = None,
    ) -> "GSULeaderElection":
        """Build the protocol with parameters derived from ``n``."""
        return cls(GSUParams.from_population_size(n, gamma=gamma, phi=phi, psi=psi))

    # ------------------------------------------------------------------
    # PopulationProtocol interface
    # ------------------------------------------------------------------
    def initial_state(self, n: int) -> GSUAgentState:
        return zero_state()

    def initial_configuration(self, n: int) -> Sequence[GSUAgentState]:
        return [zero_state()] * n

    def transition(self, responder: GSUAgentState, initiator: GSUAgentState):
        params = self.params
        clock = self.clock

        # 1. Phase-clock update of the responder.
        old_phase = responder.phase
        new_phase = clock.advance(
            old_phase, initiator.phase, responder.is_junta(params.phi)
        )
        ctx = InteractionContext(
            passed_zero=clock.passed_zero(old_phase, new_phase),
            early=clock.is_early(old_phase, new_phase),
            late=clock.is_late(old_phase, new_phase),
        )
        updated = responder.with_phase(new_phase)
        partner = initiator

        # 2. Initialisation / role assignment.  If a role was assigned (or an
        # agent deactivated) in this interaction, the agents do not also act
        # in their new roles within the same interaction — the remaining rule
        # families are skipped.  Without this, e.g. a freshly created coin
        # would immediately be stopped by its own creation partner.
        updated, partner = apply_initialisation(updated, partner, ctx, params)
        if updated.role != responder.role or partner.role != initiator.role:
            return updated, partner

        # 3-7. Sub-population rules (each family is role-guarded).
        updated, partner = apply_coin_preprocessing(updated, partner, ctx, params)
        updated, partner = apply_inhibitor_rules(updated, partner, ctx, params)
        updated, partner = apply_round_reset(updated, partner, ctx, params)
        updated, partner = apply_coin_flip(updated, partner, ctx, params)
        updated, partner = apply_heads_epidemic(updated, partner, ctx, params)
        updated, partner = apply_drag_rules(updated, partner, ctx, params)
        updated, partner = apply_slow_backup(updated, partner, ctx, params)
        return updated, partner

    def output(self, state: GSUAgentState) -> str:
        return LEADER_OUTPUT if is_alive_leader(state) else FOLLOWER_OUTPUT

    def describe_state(self, state: GSUAgentState) -> str:
        return state.describe()

    # ------------------------------------------------------------------
    # Convergence helpers
    # ------------------------------------------------------------------
    @staticmethod
    def no_uninitialised_agents(engine: BaseEngine) -> bool:
        """No agent is still in role ``0`` or ``X``.

        Once this holds, no new leader candidates can ever be created (rule
        (1a) is the only source of ``L`` agents), so "exactly one alive
        candidate" is a stable certificate of successful election.
        """
        for sid, count in engine.state_count_items():
            if count == 0:
                continue
            state = engine.encoder.decode(sid)
            if state.role in (Role.ZERO, Role.X):
                return False
        return True

    def convergence(self) -> SingleLeader:
        """The convergence predicate used for this protocol's experiments."""
        return SingleLeader(
            extra_condition=self.no_uninitialised_agents,
            description=(
                "exactly one alive leader candidate and no uninitialised agents"
            ),
        )
