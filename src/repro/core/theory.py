"""Closed-form predictions derived from the paper's lemmas.

Experiments compare measured quantities against the *shapes* the paper
proves.  The constants hidden in the asymptotic statements are not specified
by the paper, so every function below exposes the leading constant as an
argument (defaulting to 1) and the experiment layer fits or reports ratios
rather than absolute values.
"""

from __future__ import annotations

import math
from typing import List

from repro.coins.biased import expected_level_counts
from repro.coins.analysis import junta_bounds
from repro.errors import ConfigurationError

__all__ = [
    "predicted_level_counts",
    "predicted_junta_window",
    "predicted_drag_group_sizes",
    "predicted_drag_tick_parallel_time",
    "predicted_active_after_fast_elimination",
    "predicted_final_elimination_rounds",
    "predicted_expected_parallel_time",
    "predicted_whp_parallel_time",
    "predicted_uninitialised_fraction",
]


def _check_n(n: int) -> None:
    if n < 4:
        raise ConfigurationError(f"population size must be >= 4, got {n}")


def predicted_level_counts(n: int, phi: int) -> List[float]:
    """Idealised coin-level populations ``C_ℓ`` (Figure 1 / Lemmas 5.1–5.2)."""
    _check_n(n)
    return expected_level_counts(n, phi, coin_fraction=0.25)


def predicted_junta_window(n: int) -> tuple:
    """The ``[n^0.45, n^0.77]`` junta-size window of Lemma 5.3."""
    _check_n(n)
    return junta_bounds(n)


def predicted_drag_group_sizes(n: int, psi: int) -> List[float]:
    """Expected inhibitor sub-group sizes ``D_ℓ ≈ (n/4)·4^{-ℓ}`` (Lemma 7.1).

    The returned list gives, for ``ℓ = 0 … Ψ``, the expected number of
    inhibitors whose drag is exactly ``ℓ`` (the last entry absorbs the tail,
    i.e. counts inhibitors reaching ``Ψ``).
    """
    _check_n(n)
    if psi < 1:
        raise ConfigurationError(f"psi must be >= 1, got {psi}")
    total_inhibitors = n / 4.0
    sizes = []
    for level in range(psi):
        sizes.append(total_inhibitors * (0.25**level) * 0.75)
    sizes.append(total_inhibitors * (0.25**psi))
    return sizes


def predicted_drag_tick_parallel_time(level: int, n: int, constant: float = 1.0) -> float:
    """Predicted parallel time between drag ticks ``ℓ`` and ``ℓ+1``:
    ``Θ(4^ℓ log n)`` (Lemma 7.2)."""
    _check_n(n)
    if level < 0:
        raise ConfigurationError(f"level must be non-negative, got {level}")
    return constant * (4.0**level) * math.log2(n)


def predicted_active_after_fast_elimination(n: int, constant: float = 1.0) -> float:
    """Active candidates surviving fast elimination: ``O(log n)`` (Lemma 6.2)."""
    _check_n(n)
    return constant * math.log2(n)


def predicted_final_elimination_rounds(n: int, constant: float = 1.0) -> float:
    """Expected rounds of final elimination: ``O(log log n)`` (Lemma 7.3).

    The proof bounds the expectation by ``log_{6/5}(c·log n) + O(1)``; we
    report that explicit form.
    """
    _check_n(n)
    candidates = max(2.0, constant * math.log2(n))
    return math.log(candidates) / math.log(6.0 / 5.0)


def predicted_expected_parallel_time(n: int, constant: float = 1.0) -> float:
    """The headline bound: expected parallel time ``O(log n · log log n)``."""
    _check_n(n)
    log_n = math.log2(n)
    return constant * log_n * max(1.0, math.log2(log_n))


def predicted_whp_parallel_time(n: int, constant: float = 1.0) -> float:
    """The with-high-probability bound: parallel time ``O(log² n)``."""
    _check_n(n)
    return constant * math.log2(n) ** 2


def predicted_uninitialised_fraction(n: int, constant: float = 1.0) -> float:
    """Fraction of agents never given a role: ``O(1/log n)`` (Lemma 4.1)."""
    _check_n(n)
    return constant / math.log2(n)
