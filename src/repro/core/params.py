"""Protocol parameters for the GSU19 leader-election protocol.

Like every known space-efficient leader-election population protocol, GSU19
is *non-uniform*: the transition function is allowed to depend on a rough
estimate of the population size ``n`` (the paper notes this explicitly — the
knowledge is needed "e.g. to set the size of the phase clock").  All such
dependencies are collected in :class:`GSUParams`:

* ``gamma`` — the phase-clock modulus ``Γ`` (a constant in the paper; the
  default here is calibrated so that, at the population sizes a Python
  simulation can reach, one clock round comfortably contains a one-way
  epidemic among the leader sub-population),
* ``phi`` — the highest coin level ``Φ``; the paper uses
  ``⌊log log n⌋ − 3``, a constant offset tuned for asymptotically large
  ``n``.  We use ``max(1, ⌊log₂ log₂ n⌋ − 2)``, which keeps the junta size
  inside the ``[n^0.45, n^0.77]`` window of Lemma 5.3 at simulable sizes
  (DESIGN.md discusses the calibration),
* ``psi`` — the drag-counter range ``Ψ = Θ(log log n)``, chosen so that
  ``4^Ψ ≳ log n`` and hence the slowing-down counter covers the first
  ``Θ(n log² n)`` interactions as required in Section 7.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["GSUParams", "DEFAULT_GAMMA"]

#: Default phase-clock modulus.  Must be even; see the class docstring.
DEFAULT_GAMMA = 24


@dataclass(frozen=True)
class GSUParams:
    """All size-dependent parameters of the GSU19 protocol.

    Attributes
    ----------
    n_hint:
        The population-size estimate the parameters were derived from.
    gamma:
        Phase-clock modulus ``Γ`` (even, ≥ 4).
    phi:
        Highest coin level ``Φ`` (≥ 1).  Coins reaching level ``Φ`` form the
        junta that drives the phase clock.
    psi:
        Highest drag value ``Ψ`` (≥ 1) for inhibitors and leader candidates.
    """

    n_hint: int
    gamma: int = DEFAULT_GAMMA
    phi: int = 1
    psi: int = 2

    def __post_init__(self) -> None:
        if self.n_hint < 4:
            raise ConfigurationError(
                f"the protocol needs a population of at least 4 agents, got hint "
                f"{self.n_hint}"
            )
        if self.gamma < 4 or self.gamma % 2 != 0:
            raise ConfigurationError(
                f"gamma must be an even integer >= 4, got {self.gamma}"
            )
        if self.phi < 1:
            raise ConfigurationError(f"phi must be >= 1, got {self.phi}")
        if self.psi < 1:
            raise ConfigurationError(f"psi must be >= 1, got {self.psi}")

    # ------------------------------------------------------------------
    @classmethod
    def from_population_size(
        cls,
        n: int,
        *,
        gamma: int | None = None,
        phi: int | None = None,
        psi: int | None = None,
    ) -> "GSUParams":
        """Derive parameters from (an estimate of) the population size.

        Any of the three parameters can be overridden explicitly, which the
        calibration experiments and tests use.
        """
        if n < 4:
            raise ConfigurationError(
                f"the protocol needs a population of at least 4 agents, got {n}"
            )
        log_n = math.log2(max(4, n))
        loglog_n = math.log2(log_n)
        derived_phi = max(1, int(math.floor(loglog_n)) - 2)
        derived_psi = max(2, int(math.ceil(loglog_n / 2.0)) + 1)
        return cls(
            n_hint=n,
            gamma=DEFAULT_GAMMA if gamma is None else gamma,
            phi=derived_phi if phi is None else phi,
            psi=derived_psi if psi is None else psi,
        )

    # ------------------------------------------------------------------
    @property
    def initial_cnt(self) -> int:
        """Initial value of the leaders' round counter: ``2Φ + 3``.

        One larger than the number of coin applications (``2Φ + 2``), so
        that the very first round — during which roles and coin levels are
        still stabilising — performs no coin flips.
        """
        return 2 * self.phi + 3

    @property
    def coin_schedule_length(self) -> int:
        """Total number of biased-coin applications in fast elimination."""
        return 2 * self.phi + 2

    def coin_level_for_cnt(self, cnt: int) -> int:
        """The coin level ``γ(cnt)`` used while the round counter equals ``cnt``.

        The schedule, read in the order the protocol consumes it (``cnt``
        counts *down* from ``2Φ+2``), applies coin ``Φ`` four times and then
        each of ``Φ−1, Φ−2, …, 1`` twice; ``cnt = 0`` (final elimination)
        uses the almost-fair level-0 coin.
        """
        if cnt < 0:
            raise ConfigurationError(f"cnt must be non-negative, got {cnt}")
        if cnt == 0:
            return 0
        if cnt > self.coin_schedule_length:
            raise ConfigurationError(
                f"cnt={cnt} exceeds the schedule length {self.coin_schedule_length}"
            )
        if cnt <= 2 * self.phi - 2:
            return (cnt + 1) // 2
        return self.phi

    def coin_schedule(self) -> list:
        """The full schedule ``γ`` as a list indexed by ``cnt = 1 … 2Φ+2``."""
        return [self.coin_level_for_cnt(cnt) for cnt in range(1, self.coin_schedule_length + 1)]

    # ------------------------------------------------------------------
    @property
    def half_gamma(self) -> int:
        """``Γ/2`` — the boundary between the early and late half of a round."""
        return self.gamma // 2

    def describe(self) -> str:
        """Human-readable parameter summary used in reports."""
        return (
            f"GSUParams(n_hint={self.n_hint}, gamma={self.gamma}, phi={self.phi}, "
            f"psi={self.psi}, initial_cnt={self.initial_cnt}, "
            f"schedule={self.coin_schedule()})"
        )
