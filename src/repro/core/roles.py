"""Initialisation epoch: symmetry breaking and role assignment (Section 4).

The whole population starts in the common state ``0``.  Two symmetry-breaking
rules (rule (1) in the paper) partition the agents into the three working
sub-populations::

    0 + 0 → X + L          (responder 0 meets initiator 0)
    X + X → C + I          (responder X meets initiator X)

so that, up to lower-order terms, half of the agents become leader
candidates ``L``, a quarter become coins ``C`` and a quarter become
inhibitors ``I``.  Rule (2) cleans up the stragglers: an agent still in
state ``0`` or ``X`` when its clock first passes through 0 (the end of the
first round) deactivates itself (``D``) and thereafter only relays the
clock.  Lemma 4.1 shows only ``O(n / log n)`` agents are lost this way.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.context import InteractionContext
from repro.core.params import GSUParams
from repro.core.state import (
    GSUAgentState,
    coin_state,
    deactivated_state,
    inhibitor_state,
    intermediate_state,
    leader_state,
)
from repro.types import Role

__all__ = ["apply_initialisation"]


def apply_initialisation(
    responder: GSUAgentState,
    initiator: GSUAgentState,
    ctx: InteractionContext,
    params: GSUParams,
) -> Tuple[GSUAgentState, GSUAgentState]:
    """Apply the role-assignment rules (1) and the deactivation rule (2).

    The responder's clock phase has already been advanced by the caller; the
    initiator keeps its phase (only the responder updates its clock in an
    interaction).
    """
    # Rule (2): deactivation at the end of the first round takes precedence —
    # an agent that reaches a pass through 0 while still uninitialised is lost.
    if ctx.passed_zero and responder.role in (Role.ZERO, Role.X):
        return deactivated_state(phase=responder.phase), initiator

    # Rule (1a): 0 + 0 → X + L.  Both agents change: the responder enters the
    # intermediate state, the initiator becomes a leader candidate with the
    # initial round counter 2Φ+3.
    if responder.role == Role.ZERO and initiator.role == Role.ZERO:
        new_responder = intermediate_state(phase=responder.phase)
        new_initiator = leader_state(
            phase=initiator.phase, cnt=params.initial_cnt
        )
        return new_responder, new_initiator

    # Rule (1b): X + X → C + I.  The responder becomes a level-0 advancing
    # coin, the initiator a drag-0 advancing low inhibitor.
    if responder.role == Role.X and initiator.role == Role.X:
        new_responder = coin_state(phase=responder.phase)
        new_initiator = inhibitor_state(phase=initiator.phase)
        return new_responder, new_initiator

    return responder, initiator
