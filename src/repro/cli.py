"""Command-line interface.

Run the reproduction experiments from a terminal::

    python -m repro.cli list
    python -m repro.cli run figure1 --preset smoke
    python -m repro.cli run table1 --preset default --output results/
    python -m repro.cli run-all --preset smoke

The ``--preset`` option selects one of the
:class:`~repro.experiments.config.ExperimentConfig` presets (``smoke``,
``default``, ``large``, ``headline``, ``extreme``); individual sweep
parameters can be overridden with ``--sizes``, ``--repetitions`` and
``--budget``.  ``--engine`` picks the simulation engine (``sequential``,
``count``, ``countbatch``, ``fastbatch``, ``batch``) or ``auto`` to
dispatch on population size — see the engine selection guide in
:mod:`repro.engine`.  The ``headline`` preset is the ``n = 10^7``/``10^8``
GSU19 scenario tier on ``auto`` dispatch (count-space simulation at
``10^8``; hours-to-days of wall clock); ``extreme`` is the trillion-agent
count-space tier (``n = 10^12`` through the compiled count kernel, under
1 GiB peak memory)::

    python -m repro.cli run table1 --preset headline
    python -m repro.cli run table1 --preset extreme --budget 5

The scenario axis relaxes the classical model: ``--topology`` restricts
the interaction graph (``cycle``, ``grid2d``, ``random-regular``,
``powerlaw``), ``--churn RATE`` adds symmetric Poisson churn and
``--faults SPEC`` injects faults (``crash:1e-4,drop:0.1``).  The
``matrix`` experiment sweeps protocols × scenarios wholesale::

    python -m repro.cli run matrix --preset smoke
    python -m repro.cli run table1 --preset smoke --topology cycle --churn 0.01

Long campaigns are made restartable with the on-disk experiment store:
``--store DIR`` persists every completed experiment under a content hash of
``(experiment, configuration)``, and adding ``--resume`` makes a rerun load
completed experiments from the store and execute only the missing ones —
so a crashed ``run-all`` picks up where it left off::

    python -m repro.cli run-all --preset default --store results/store --resume
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import List, Optional, Sequence

from repro.engine.dispatch import ENGINE_NAMES
from repro.experiments.config import ExperimentConfig
from repro.experiments.io import write_result
from repro.experiments.registry import available_experiments, run_experiment
from repro.scenarios import (
    ChurnModel,
    FaultModel,
    Scenario,
    available_topologies,
    topology_from_name,
)
from repro.viz.report import render_report

__all__ = ["main", "build_parser", "config_from_args", "scenario_from_args"]

_PRESETS = {
    "smoke": ExperimentConfig.smoke,
    "default": ExperimentConfig.default,
    "large": ExperimentConfig.large,
    "headline": ExperimentConfig.headline,
    "extreme": ExperimentConfig.extreme,
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduction experiments for 'Almost Logarithmic-Time Space Optimal "
            "Leader Election in Population Protocols' (SPAA 2019)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--preset",
            choices=sorted(_PRESETS),
            default="smoke",
            help="experiment configuration preset (default: smoke)",
        )
        sub.add_argument(
            "--sizes",
            type=int,
            nargs="+",
            default=None,
            help="override the population sizes to sweep",
        )
        sub.add_argument(
            "--repetitions",
            type=int,
            default=None,
            help="override the number of seeds per population size",
        )
        sub.add_argument(
            "--budget",
            type=float,
            default=None,
            help="override the per-run parallel-time budget",
        )
        sub.add_argument(
            "--engine",
            choices=list(ENGINE_NAMES),
            default=None,
            help=(
                "simulation engine to run on (default: the preset's engine, "
                "i.e. sequential); 'auto' dispatches per population size"
            ),
        )
        sub.add_argument(
            "--workers",
            type=int,
            default=None,
            metavar="K",
            help=(
                "worker processes for the sweep scheduler (default: the "
                "preset's setting, i.e. serial); results are bit-identical "
                "at every worker count"
            ),
        )
        sub.add_argument(
            "--topology",
            choices=available_topologies(),
            default=None,
            help=(
                "interaction topology for every run (default: complete "
                "graph, the classical model)"
            ),
        )
        sub.add_argument(
            "--churn",
            type=float,
            default=None,
            metavar="RATE",
            help=(
                "symmetric per-interaction Poisson churn rate: agents leave "
                "and (re)join in the protocol's initial state"
            ),
        )
        sub.add_argument(
            "--faults",
            type=str,
            default=None,
            metavar="SPEC",
            help=(
                "fault model, e.g. 'crash:1e-4', 'drop:0.1' or "
                "'crash:1e-4,drop:0.1,byzantine:0.02'"
            ),
        )
        sub.add_argument(
            "--output",
            type=str,
            default=None,
            help="directory to write CSV/JSON/markdown results to",
        )
        sub.add_argument(
            "--store",
            type=str,
            default=None,
            metavar="DIR",
            help=(
                "on-disk experiment store: completed experiments are "
                "persisted here under a content hash of (experiment, "
                "configuration)"
            ),
        )
        sub.add_argument(
            "--resume",
            action="store_true",
            help=(
                "with --store, load experiments already completed under this "
                "exact configuration instead of re-running them"
            ),
        )
        sub.add_argument(
            "--no-charts",
            action="store_true",
            help="do not print ASCII charts",
        )

    run_parser = subparsers.add_parser("run", help="run a single experiment")
    run_parser.add_argument("experiment", choices=available_experiments())
    add_common(run_parser)

    run_all_parser = subparsers.add_parser("run-all", help="run every experiment")
    add_common(run_all_parser)

    return parser


def scenario_from_args(args: argparse.Namespace) -> Optional[Scenario]:
    """Build a :class:`~repro.scenarios.Scenario` from the ``--topology`` /
    ``--churn`` / ``--faults`` flags, or ``None`` when none were given."""
    topology = getattr(args, "topology", None)
    churn = getattr(args, "churn", None)
    faults = getattr(args, "faults", None)
    if topology is None and churn is None and not faults:
        return None
    return Scenario(
        topology=topology_from_name(topology or "complete"),
        churn=ChurnModel.symmetric(churn) if churn else ChurnModel.none(),
        faults=FaultModel.parse(faults) if faults else FaultModel.none(),
    )


def config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    """Build an :class:`ExperimentConfig` from parsed CLI arguments."""
    config = _PRESETS[args.preset]()
    if args.sizes:
        config = config.with_sizes(args.sizes)
    if args.repetitions:
        config = config.with_repetitions(args.repetitions)
    if args.budget:
        config = replace(config, max_parallel_time=args.budget)
    if getattr(args, "engine", None):
        config = config.with_engine(args.engine)
    if getattr(args, "workers", None):
        config = config.with_workers(args.workers)
    scenario = scenario_from_args(args)
    if scenario is not None:
        config = config.with_scenario(scenario)
    return config


def _run_one(name: str, config: ExperimentConfig, args: argparse.Namespace) -> None:
    result = run_experiment(
        name, config, store=args.store, resume=args.resume
    )
    if result.metadata.get("loaded_from_store"):
        print(f"[{name}: loaded completed result from store {args.store}]\n")
    print(render_report(result, charts=not args.no_charts))
    if args.output:
        directory = write_result(result, args.output)
        print(f"\nresults written to {directory}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)

    if args.command == "list":
        for name in available_experiments():
            print(name)
        return 0

    if getattr(args, "resume", False) and not getattr(args, "store", None):
        parser.error("--resume requires --store DIR")
    config = config_from_args(args)
    if args.command == "run":
        _run_one(args.experiment, config, args)
        return 0
    if args.command == "run-all":
        for name in available_experiments():
            _run_one(name, config, args)
            print("\n" + "=" * 72 + "\n")
        return 0
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
