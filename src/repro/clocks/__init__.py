"""Phase clocks for population protocols.

The GSU19 protocol synchronises its epochs with a *junta-driven phase clock*
(Section 3 of the paper, adopted from GS18): every agent keeps a phase in
``{0, …, Γ−1}``; junta members ("clock leaders") push the phase forward by
taking ``max_Γ(own, seen + 1)`` while all other agents copy ``max_Γ(own,
seen)``.  The windowed maximum ``max_Γ`` keeps the population's phases inside
a band of width ``Γ/2``, so the whole population cycles coherently and an
agent's period between two *passes through 0* — a **round** — is
``Θ(log n)`` parallel time (Theorem 3.2).

This sub-package provides

* the clock arithmetic (:func:`~repro.clocks.phase_clock.max_gamma`,
  :class:`~repro.clocks.phase_clock.PhaseClockRules`),
* a standalone clock protocol used to validate Theorem 3.2 empirically
  (:class:`~repro.clocks.phase_clock.JuntaPhaseClockProtocol`),
* a simplified leaderless clock used as an ablation substrate
  (:class:`~repro.clocks.leaderless_clock.LeaderlessClockProtocol`),
* round-tracking utilities (:mod:`repro.clocks.round_tracker`).
"""

from repro.clocks.phase_clock import (
    ClockState,
    JuntaPhaseClockProtocol,
    PhaseClockRules,
    max_gamma,
)
from repro.clocks.leaderless_clock import LeaderlessClockProtocol
from repro.clocks.round_tracker import (
    PhaseStatistics,
    RoundLengthEstimator,
    circular_mean_phase,
)

__all__ = [
    "max_gamma",
    "PhaseClockRules",
    "ClockState",
    "JuntaPhaseClockProtocol",
    "LeaderlessClockProtocol",
    "PhaseStatistics",
    "RoundLengthEstimator",
    "circular_mean_phase",
]
