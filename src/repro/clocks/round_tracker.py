"""Round tracking and phase statistics.

The clock experiments (Theorem 3.2 validation, calibration of ``Γ``) need to
measure round lengths from the outside of a running engine.  Two mechanisms
are provided:

* :class:`PhaseStatistics` — summarises the phase distribution of the current
  configuration (circular mean, spread, fraction in the early half) given an
  accessor that extracts the phase from an agent state.
* :class:`RoundLengthEstimator` — fed one :class:`PhaseStatistics` per check
  point, it detects global round boundaries (wrap-arounds of the circular
  mean) and reports the parallel-time length of each completed round.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.engine.base import BaseEngine
from repro.types import State

__all__ = ["circular_mean_phase", "PhaseStatistics", "RoundLengthEstimator"]


def circular_mean_phase(phases: List[int], counts: List[int], gamma: int) -> float:
    """Circular mean of a weighted phase sample, in ``[0, Γ)``.

    Phases live on a cycle, so the arithmetic mean is meaningless near the
    wrap-around; the circular mean (angle of the average unit vector) is the
    appropriate summary.
    """
    if not phases:
        return 0.0
    sin_sum = 0.0
    cos_sum = 0.0
    total = 0
    for phase, count in zip(phases, counts):
        angle = 2.0 * math.pi * phase / gamma
        sin_sum += count * math.sin(angle)
        cos_sum += count * math.cos(angle)
        total += count
    if total == 0:
        return 0.0
    angle = math.atan2(sin_sum / total, cos_sum / total)
    if angle < 0:
        angle += 2.0 * math.pi
    return angle * gamma / (2.0 * math.pi)


@dataclass
class PhaseStatistics:
    """Snapshot summary of the population's clock phases."""

    parallel_time: float
    mean_phase: float
    min_phase: int
    max_phase: int
    early_fraction: float
    population: int

    @classmethod
    def from_engine(
        cls,
        engine: BaseEngine,
        phase_of: Callable[[State], Optional[int]],
        gamma: int,
    ) -> "PhaseStatistics":
        """Collect phase statistics from an engine.

        ``phase_of`` may return ``None`` for states that carry no clock (such
        agents are excluded from the statistics).
        """
        phases: List[int] = []
        counts: List[int] = []
        early = 0
        total = 0
        min_phase = gamma
        max_phase = -1
        half = gamma // 2
        for sid, count in engine.state_count_items():
            phase = phase_of(engine.encoder.decode(sid))
            if phase is None:
                continue
            phases.append(phase)
            counts.append(count)
            total += count
            if phase < half:
                early += count
            min_phase = min(min_phase, phase)
            max_phase = max(max_phase, phase)
        if total == 0:
            return cls(engine.parallel_time, 0.0, 0, 0, 0.0, 0)
        return cls(
            parallel_time=engine.parallel_time,
            mean_phase=circular_mean_phase(phases, counts, gamma),
            min_phase=min_phase,
            max_phase=max_phase,
            early_fraction=early / total,
            population=total,
        )


@dataclass
class RoundLengthEstimator:
    """Detects global rounds from a stream of :class:`PhaseStatistics`.

    A round boundary is declared when the circular mean phase wraps (drops by
    more than ``Γ/2``).  Feeding statistics sampled at least a few times per
    round is the caller's responsibility (the experiments sample once per
    parallel-time unit, far finer than the ``Θ(log n)`` round length).
    """

    gamma: int
    boundaries: List[float] = field(default_factory=list)
    _last_mean: Optional[float] = None

    def observe(self, statistics: PhaseStatistics) -> Optional[float]:
        """Consume one snapshot; return the just-completed round length, if any.

        Only wrap-to-wrap intervals count as rounds — the stretch between the
        first observation and the first wrap is discarded because it is, in
        general, only a fraction of a round.
        """
        mean = statistics.mean_phase
        completed: Optional[float] = None
        if self._last_mean is not None and self._last_mean - mean > self.gamma / 2:
            # Wrapped: a global pass through zero happened since the last check.
            if self.boundaries:
                completed = statistics.parallel_time - self.boundaries[-1]
            self.boundaries.append(statistics.parallel_time)
        self._last_mean = mean
        return completed

    def round_lengths(self) -> List[float]:
        """Parallel-time lengths of all completed rounds."""
        return [
            later - earlier
            for earlier, later in zip(self.boundaries, self.boundaries[1:])
        ]

    def completed_rounds(self) -> int:
        """Number of completed rounds observed so far."""
        return max(0, len(self.boundaries) - 1)
