"""A simplified leaderless phase clock (ablation substrate).

The paper's clock is powered by a junta elected during coin preprocessing.
An alternative family of clocks needs no junta at all: Alistarh, Aspnes and
Gelashvili (SODA 2018) drive a clock from synthetic coin flips.  For ablation
purposes we implement a deterministic simplification in which *every* agent
acts as a (weak) pacemaker: the responder takes the windowed maximum of the
two phases and additionally steps forward by one when the two phases are
equal.  Ties are frequent early on, so the clock advances, but because every
agent pushes, the phase band is wider and the round structure is noisier than
with a junta — which is exactly the comparison the ablation benchmark makes.

This module is **not** part of the reproduced protocol; it exists so that the
"why a junta?" design choice called out in DESIGN.md can be benchmarked.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.clocks.phase_clock import PhaseClockRules
from repro.engine.protocol import FOLLOWER_OUTPUT, PopulationProtocol

__all__ = ["LeaderlessClockProtocol", "LeaderlessClockState"]


@dataclass(frozen=True)
class LeaderlessClockState:
    """State of an agent in the leaderless clock: a phase and a round count."""

    phase: int = 0
    rounds: int = 0


class LeaderlessClockProtocol(PopulationProtocol):
    """Every agent is a pacemaker: ties push the clock forward."""

    name = "leaderless-phase-clock"

    def __init__(self, gamma: int = 32, max_rounds: int = 64) -> None:
        self.rules = PhaseClockRules(gamma)
        self.gamma = gamma
        self.max_rounds = max_rounds

    def initial_state(self, n: int) -> LeaderlessClockState:
        return LeaderlessClockState()

    def initial_configuration(self, n: int) -> Sequence[LeaderlessClockState]:
        return [LeaderlessClockState()] * n

    def transition(self, responder: LeaderlessClockState, initiator: LeaderlessClockState):
        if responder.phase == initiator.phase:
            new_phase = (responder.phase + 1) % self.gamma
        else:
            new_phase = self.rules.advance(responder.phase, initiator.phase, False)
        rounds = responder.rounds
        if self.rules.passed_zero(responder.phase, new_phase):
            rounds = min(rounds + 1, self.max_rounds)
        if new_phase == responder.phase and rounds == responder.rounds:
            return responder, initiator
        return LeaderlessClockState(phase=new_phase, rounds=rounds), initiator

    def output(self, state: LeaderlessClockState) -> str:
        return FOLLOWER_OUTPUT

    def phase_of(self, state: LeaderlessClockState) -> int:
        """Accessor used by the round-tracking utilities."""
        return state.phase

    def rounds_of(self, state: LeaderlessClockState) -> int:
        """Completed-round counter of an agent."""
        return state.rounds
