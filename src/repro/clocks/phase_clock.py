"""Junta-driven phase clock (Section 3 of the paper).

The clock is defined by two ingredients:

* the windowed maximum

  .. math::

     \\max_Γ(x, y) = \\begin{cases}
        \\max(x, y) & |x - y| \\le Γ/2 \\\\
        \\min(x, y) & |x - y| > Γ/2
     \\end{cases}

  which treats phases as points on a cycle of length ``Γ`` and picks the one
  that is "ahead" within a window of ``Γ/2`` — an agent that has run too far
  ahead of a straggler is pulled *back*, which is what keeps the population's
  phases in a coherent band; and

* the transition rules

  .. math::

     \\langle follower, t_1 \\rangle + \\langle t_2 \\rangle &\\to
        \\langle follower, \\max_Γ(t_1, t_2) \\rangle + \\langle t_2 \\rangle \\\\
     \\langle injunta,  t_1 \\rangle + \\langle t_2 \\rangle &\\to
        \\langle injunta,  \\max_Γ(t_1, t_2 +_Γ 1) \\rangle + \\langle t_2 \\rangle

  applied to the **responder**; junta members therefore act as the clock's
  pacemakers.

An agent *passes through 0* when an update strictly decreases its numeric
phase (a wrap-around); the interval between two consecutive passes is a
*round*.  Interactions whose start and end phases both lie in
``[0, Γ/2)`` are *early*; those with both in ``[Γ/2, Γ)`` are *late*.  The
GSU19 protocol performs coin flips in the early half of a round and the
heads-epidemic in the late half.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.engine.protocol import FOLLOWER_OUTPUT, PopulationProtocol
from repro.errors import ConfigurationError
from repro.types import ClockMode

__all__ = ["max_gamma", "PhaseClockRules", "ClockState", "JuntaPhaseClockProtocol"]


def max_gamma(x: int, y: int, gamma: int) -> int:
    """The windowed maximum ``max_Γ`` from Section 3.

    Returns ``max(x, y)`` when the two phases are within ``Γ/2`` of each
    other and ``min(x, y)`` otherwise.  Both arguments must lie in
    ``[0, Γ)``.
    """
    if not (0 <= x < gamma and 0 <= y < gamma):
        raise ValueError(f"phases must lie in [0, {gamma}), got {x}, {y}")
    if abs(x - y) <= gamma // 2:
        return x if x >= y else y
    return x if x <= y else y


@dataclass(frozen=True)
class PhaseClockRules:
    """Phase-clock arithmetic for a fixed modulus ``Γ``.

    The class bundles the responder update rule, pass-through-zero detection
    and the early/late classification used by the protocol's ``early→`` and
    ``late→`` transition arrows.
    """

    gamma: int

    def __post_init__(self) -> None:
        if self.gamma < 4 or self.gamma % 2 != 0:
            raise ConfigurationError(
                f"phase clock modulus must be an even integer >= 4, got {self.gamma}"
            )

    # ------------------------------------------------------------------
    def advance(self, responder_phase: int, initiator_phase: int, is_junta: bool) -> int:
        """New phase of the responder after one interaction."""
        if is_junta:
            bumped = (initiator_phase + 1) % self.gamma
            return max_gamma(responder_phase, bumped, self.gamma)
        return max_gamma(responder_phase, initiator_phase, self.gamma)

    def passed_zero(self, old_phase: int, new_phase: int) -> bool:
        """Whether the update wrapped past 0 ("pass through 0").

        The paper's definition: the clock passes through 0 whenever its
        current phase is *reduced in absolute terms*.
        """
        return new_phase < old_phase

    def passed_half(self, old_phase: int, new_phase: int) -> bool:
        """Whether the update crossed ``Γ/2`` (start of the late half)."""
        half = self.gamma // 2
        return old_phase < half <= new_phase

    def is_early_phase(self, phase: int) -> bool:
        """Whether ``phase`` lies in the early half ``[0, Γ/2)``."""
        return phase < self.gamma // 2

    def is_early(self, old_phase: int, new_phase: int) -> bool:
        """Whether an interaction qualifies for an ``early→`` rule
        (both start and end phase in the early half)."""
        half = self.gamma // 2
        return old_phase < half and new_phase < half

    def is_late(self, old_phase: int, new_phase: int) -> bool:
        """Whether an interaction qualifies for a ``late→`` rule
        (both start and end phase in the late half)."""
        half = self.gamma // 2
        return old_phase >= half and new_phase >= half


@dataclass(frozen=True)
class ClockState:
    """State of an agent in the standalone phase-clock protocol."""

    phase: int = 0
    mode: ClockMode = ClockMode.FOLLOWER
    #: Number of completed rounds, capped so the state space stays finite.
    rounds: int = 0


class JuntaPhaseClockProtocol(PopulationProtocol):
    """Standalone junta-driven phase clock.

    Used to validate Theorem 3.2 empirically: a fixed fraction of agents is
    designated as the junta in the initial configuration and the protocol
    simply runs the clock, counting completed rounds (up to ``max_rounds``)
    in each agent's state so round lengths can be measured from snapshots.

    Parameters
    ----------
    gamma:
        Clock modulus ``Γ``.
    junta_size:
        Absolute number of junta agents placed in the initial configuration.
    max_rounds:
        Cap on the per-agent round counter (keeps the state space finite).
    """

    name = "junta-phase-clock"

    def __init__(self, gamma: int = 32, junta_size: int = 8, max_rounds: int = 64) -> None:
        if junta_size < 1:
            raise ConfigurationError(f"junta_size must be >= 1, got {junta_size}")
        if max_rounds < 1:
            raise ConfigurationError(f"max_rounds must be >= 1, got {max_rounds}")
        self.rules = PhaseClockRules(gamma)
        self.gamma = gamma
        self.junta_size = junta_size
        self.max_rounds = max_rounds

    # ------------------------------------------------------------------
    @classmethod
    def for_population(
        cls, n: int, *, gamma: int = 32, junta_exponent: float = 0.6, max_rounds: int = 64
    ) -> "JuntaPhaseClockProtocol":
        """Build a clock whose junta has size ``⌈n^junta_exponent⌉``."""
        junta_size = max(1, int(round(n**junta_exponent)))
        junta_size = min(junta_size, n)
        return cls(gamma=gamma, junta_size=junta_size, max_rounds=max_rounds)

    # ------------------------------------------------------------------
    def initial_state(self, n: int) -> ClockState:
        return ClockState()

    def initial_configuration(self, n: int) -> Sequence[ClockState]:
        if self.junta_size > n:
            raise ConfigurationError(
                f"junta_size={self.junta_size} exceeds population size {n}"
            )
        junta = [ClockState(mode=ClockMode.INJUNTA)] * self.junta_size
        followers = [ClockState(mode=ClockMode.FOLLOWER)] * (n - self.junta_size)
        return junta + followers

    def transition(self, responder: ClockState, initiator: ClockState):
        new_phase = self.rules.advance(
            responder.phase, initiator.phase, responder.mode == ClockMode.INJUNTA
        )
        rounds = responder.rounds
        if self.rules.passed_zero(responder.phase, new_phase):
            rounds = min(rounds + 1, self.max_rounds)
        if new_phase == responder.phase and rounds == responder.rounds:
            return responder, initiator
        return (
            ClockState(phase=new_phase, mode=responder.mode, rounds=rounds),
            initiator,
        )

    def output(self, state: ClockState) -> str:
        return FOLLOWER_OUTPUT

    # ------------------------------------------------------------------
    def phase_of(self, state: ClockState) -> int:
        """Accessor used by the round-tracking utilities."""
        return state.phase

    def rounds_of(self, state: ClockState) -> int:
        """Completed-round counter of an agent."""
        return state.rounds
