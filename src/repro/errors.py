"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised intentionally by the library derive from
:class:`ReproError`, so callers can catch a single base class.  The
sub-classes partition errors into configuration problems, protocol
definition problems, and simulation-time problems.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ProtocolError",
    "TransitionError",
    "SimulationError",
    "ConvergenceError",
    "CheckpointError",
    "ExperimentError",
    "SweepError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError, ValueError):
    """A parameter object or experiment configuration is invalid.

    Raised, for example, when a population size is non-positive, a phase
    clock modulus is too small, or a sweep specification is empty.
    """


class ProtocolError(ReproError):
    """A protocol definition is malformed.

    Raised when a protocol's initial configuration does not match the
    population size, when its output map rejects a reachable state, or when
    a transition returns states of an unexpected type.
    """


class TransitionError(ProtocolError):
    """A transition function misbehaved for a specific pair of states."""

    def __init__(self, responder, initiator, message: str) -> None:
        super().__init__(
            f"transition failed for responder={responder!r}, "
            f"initiator={initiator!r}: {message}"
        )
        self.responder = responder
        self.initiator = initiator


class SimulationError(ReproError, RuntimeError):
    """The simulation engine reached an inconsistent internal state."""


class ConvergenceError(SimulationError):
    """A run exceeded its interaction budget without satisfying its
    convergence predicate."""

    def __init__(self, interactions: int, message: str = "") -> None:
        text = f"no convergence after {interactions} interactions"
        if message:
            text = f"{text}: {message}"
        super().__init__(text)
        self.interactions = interactions


class CheckpointError(SimulationError):
    """A snapshot could not be restored or a checkpoint file is unusable.

    Raised when a snapshot targets a different engine class, protocol or
    population size than the one it is being restored into, when the
    registered state-identifier layout cannot be reproduced, or when a
    checkpoint file has an unknown format or version.
    """


class ExperimentError(ReproError):
    """An experiment harness failed (unknown experiment id, bad output path,
    inconsistent aggregation, ...)."""


class SweepError(ExperimentError):
    """One or more cells of a sweep failed.

    The sweep scheduler (:func:`repro.engine.parallel.run_many`) never lets
    a failing cell abandon the others: every remaining cell still runs,
    every completed cell is recorded (and, with a store, persisted) before
    this exception is raised.  ``failures`` lists the failed cells as
    ``(n, seed, exception)`` triples; ``points`` carries the completed
    :class:`~repro.engine.parallel.SweepPoint` objects so callers that
    catch the error lose nothing even without a store.
    """

    def __init__(self, failures, points) -> None:
        self.failures = list(failures)
        self.points = list(points)
        n, seed, cause = self.failures[0]
        super().__init__(
            f"{len(self.failures)} of "
            f"{len(self.failures) + len(self.points)} sweep cells failed "
            f"(completed cells were recorded); first failure at n={n}, "
            f"seed={seed}: {cause!r}"
        )
