"""Plain-text and markdown table rendering.

The experiment harness produces its reports as text (there is no plotting
dependency available offline), so tables are the primary output format: the
CLI prints text tables, and ``EXPERIMENTS.md`` embeds the markdown variant.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import ConfigurationError

__all__ = ["format_text_table", "format_markdown_table"]


def _normalise(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> List[List[str]]:
    if not headers:
        raise ConfigurationError("a table needs at least one column")
    width = len(headers)
    rendered: List[List[str]] = []
    for row in rows:
        cells = ["" if cell is None else str(cell) for cell in row]
        if len(cells) != width:
            raise ConfigurationError(
                f"row {cells!r} has {len(cells)} cells, expected {width}"
            )
        rendered.append(cells)
    return rendered


def format_text_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width text table (for terminal output)."""
    rendered = _normalise(headers, rows)
    columns = [list(column) for column in zip(*([list(headers)] + rendered))] if rendered else [[h] for h in headers]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    header_line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_markdown_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """GitHub-flavoured markdown table (for ``EXPERIMENTS.md``)."""
    rendered = _normalise(headers, rows)
    lines = ["| " + " | ".join(str(h) for h in headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rendered:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)
