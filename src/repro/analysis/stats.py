"""Summaries of repeated measurements.

Experiment cells (one protocol, one population size) are repeated over many
seeds; this module condenses the resulting samples into the statistics the
tables report: mean, standard deviation, standard error, quantiles, and a
bootstrap confidence interval for the mean (population-protocol convergence
times are skewed, so a normal-approximation interval alone would be
misleading for small repetition counts).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.engine.rng import make_rng
from repro.errors import ConfigurationError

__all__ = [
    "SampleSummary",
    "summarize",
    "quantile",
    "bootstrap_mean_ci",
    "KSResult",
    "ks_two_sample",
    "quantile_profile_distance",
]


@dataclass(frozen=True)
class SampleSummary:
    """Summary statistics of one sample of repeated measurements."""

    count: int
    mean: float
    std: float
    stderr: float
    minimum: float
    maximum: float
    median: float
    q25: float
    q75: float

    def format(self, precision: int = 2) -> str:
        """``mean ± stderr`` rendering used in tables."""
        return f"{self.mean:.{precision}f} ± {self.stderr:.{precision}f}"


def summarize(values: Sequence[float]) -> SampleSummary:
    """Compute a :class:`SampleSummary` of ``values``."""
    if len(values) == 0:
        raise ConfigurationError("cannot summarise an empty sample")
    data = np.asarray(list(values), dtype=np.float64)
    count = int(data.size)
    mean = float(data.mean())
    std = float(data.std(ddof=1)) if count > 1 else 0.0
    stderr = std / math.sqrt(count) if count > 1 else 0.0
    return SampleSummary(
        count=count,
        mean=mean,
        std=std,
        stderr=stderr,
        minimum=float(data.min()),
        maximum=float(data.max()),
        median=float(np.median(data)),
        q25=float(np.quantile(data, 0.25)),
        q75=float(np.quantile(data, 0.75)),
    )


def quantile(values: Sequence[float], q: float) -> float:
    """The ``q``-quantile of ``values`` (``q`` in ``[0, 1]``)."""
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError(f"quantile must lie in [0, 1], got {q}")
    if len(values) == 0:
        raise ConfigurationError("cannot take a quantile of an empty sample")
    return float(np.quantile(np.asarray(list(values), dtype=np.float64), q))


def bootstrap_mean_ci(
    values: Sequence[float],
    *,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: Optional[int] = 0,
) -> tuple:
    """Percentile-bootstrap confidence interval for the mean of ``values``."""
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(
            f"confidence must lie in (0, 1), got {confidence}"
        )
    if resamples < 1:
        raise ConfigurationError(f"resamples must be >= 1, got {resamples}")
    data = np.asarray(list(values), dtype=np.float64)
    if data.size == 0:
        raise ConfigurationError("cannot bootstrap an empty sample")
    if data.size == 1:
        return (float(data[0]), float(data[0]))
    rng = make_rng(seed)
    indices = rng.integers(0, data.size, size=(resamples, data.size))
    means = data[indices].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(means, alpha)),
        float(np.quantile(means, 1.0 - alpha)),
    )


# ----------------------------------------------------------------------
# Two-sample distribution comparison (engine equivalence testing)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class KSResult:
    """Two-sample Kolmogorov–Smirnov comparison.

    ``approximate`` is ``True`` when the p-value comes from the asymptotic
    Kolmogorov distribution (SciPy unavailable) rather than SciPy's
    small-sample computation.
    """

    statistic: float
    pvalue: float
    approximate: bool


def ks_two_sample(x: Sequence[float], y: Sequence[float]) -> KSResult:
    """Two-sample KS test: are ``x`` and ``y`` drawn from one distribution?

    Uses :func:`scipy.stats.ks_2samp` when SciPy is importable; otherwise
    computes the statistic with NumPy and the p-value from the asymptotic
    Kolmogorov distribution (adequate for the sample sizes the engine
    equivalence suite uses, n >= ~50 per side).
    """
    a = np.sort(np.asarray(list(x), dtype=np.float64))
    b = np.sort(np.asarray(list(y), dtype=np.float64))
    if a.size == 0 or b.size == 0:
        raise ConfigurationError("KS test requires two non-empty samples")
    try:
        from scipy import stats as _scipy_stats
    except ImportError:
        _scipy_stats = None
    if _scipy_stats is not None:
        outcome = _scipy_stats.ks_2samp(a, b)
        return KSResult(float(outcome.statistic), float(outcome.pvalue), False)
    pooled = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, pooled, side="right") / a.size
    cdf_b = np.searchsorted(b, pooled, side="right") / b.size
    statistic = float(np.abs(cdf_a - cdf_b).max())
    if statistic == 0.0:
        # The asymptotic series below would evaluate to 0 at lam = 0 (its
        # terms all become 1 and the alternating sum cancels), which is the
        # exact opposite of the truth for identical samples.
        return KSResult(0.0, 1.0, True)
    effective = math.sqrt(a.size * b.size / (a.size + b.size))
    lam = (effective + 0.12 + 0.11 / effective) * statistic
    terms = np.arange(1, 101, dtype=np.float64)
    pvalue = float(2.0 * np.sum((-1.0) ** (terms - 1) * np.exp(-2.0 * (terms * lam) ** 2)))
    return KSResult(statistic, min(max(pvalue, 0.0), 1.0), True)


def quantile_profile_distance(
    x: Sequence[float],
    y: Sequence[float],
    *,
    quantiles: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 0.9),
) -> float:
    """Largest quantile gap between two samples, in pooled-spread units.

    A crude but dependency-free alternative to the KS test: compares the two
    samples' quantile profiles and scales the largest absolute gap by the
    pooled interquartile range (falling back to the pooled standard
    deviation, then to the pooled mean magnitude, for degenerate samples).
    Values well below 1 mean the profiles are close relative to the
    distribution's own spread.
    """
    a = np.asarray(list(x), dtype=np.float64)
    b = np.asarray(list(y), dtype=np.float64)
    if a.size == 0 or b.size == 0:
        raise ConfigurationError("quantile comparison requires two non-empty samples")
    pooled = np.concatenate([a, b])
    scale = float(np.quantile(pooled, 0.75) - np.quantile(pooled, 0.25))
    if scale <= 0.0:
        scale = float(pooled.std())
    if scale <= 0.0:
        scale = max(float(np.abs(pooled).mean()), 1.0)
    gaps = [
        abs(float(np.quantile(a, q)) - float(np.quantile(b, q))) for q in quantiles
    ]
    return max(gaps) / scale
