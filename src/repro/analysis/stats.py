"""Summaries of repeated measurements.

Experiment cells (one protocol, one population size) are repeated over many
seeds; this module condenses the resulting samples into the statistics the
tables report: mean, standard deviation, standard error, quantiles, and a
bootstrap confidence interval for the mean (population-protocol convergence
times are skewed, so a normal-approximation interval alone would be
misleading for small repetition counts).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.engine.rng import make_rng
from repro.errors import ConfigurationError

__all__ = ["SampleSummary", "summarize", "quantile", "bootstrap_mean_ci"]


@dataclass(frozen=True)
class SampleSummary:
    """Summary statistics of one sample of repeated measurements."""

    count: int
    mean: float
    std: float
    stderr: float
    minimum: float
    maximum: float
    median: float
    q25: float
    q75: float

    def format(self, precision: int = 2) -> str:
        """``mean ± stderr`` rendering used in tables."""
        return f"{self.mean:.{precision}f} ± {self.stderr:.{precision}f}"


def summarize(values: Sequence[float]) -> SampleSummary:
    """Compute a :class:`SampleSummary` of ``values``."""
    if len(values) == 0:
        raise ConfigurationError("cannot summarise an empty sample")
    data = np.asarray(list(values), dtype=np.float64)
    count = int(data.size)
    mean = float(data.mean())
    std = float(data.std(ddof=1)) if count > 1 else 0.0
    stderr = std / math.sqrt(count) if count > 1 else 0.0
    return SampleSummary(
        count=count,
        mean=mean,
        std=std,
        stderr=stderr,
        minimum=float(data.min()),
        maximum=float(data.max()),
        median=float(np.median(data)),
        q25=float(np.quantile(data, 0.25)),
        q75=float(np.quantile(data, 0.75)),
    )


def quantile(values: Sequence[float], q: float) -> float:
    """The ``q``-quantile of ``values`` (``q`` in ``[0, 1]``)."""
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError(f"quantile must lie in [0, 1], got {q}")
    if len(values) == 0:
        raise ConfigurationError("cannot take a quantile of an empty sample")
    return float(np.quantile(np.asarray(list(values), dtype=np.float64), q))


def bootstrap_mean_ci(
    values: Sequence[float],
    *,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: Optional[int] = 0,
) -> tuple:
    """Percentile-bootstrap confidence interval for the mean of ``values``."""
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(
            f"confidence must lie in (0, 1), got {confidence}"
        )
    if resamples < 1:
        raise ConfigurationError(f"resamples must be >= 1, got {resamples}")
    data = np.asarray(list(values), dtype=np.float64)
    if data.size == 0:
        raise ConfigurationError("cannot bootstrap an empty sample")
    if data.size == 1:
        return (float(data[0]), float(data[0]))
    rng = make_rng(seed)
    indices = rng.integers(0, data.size, size=(resamples, data.size))
    means = data[indices].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(means, alpha)),
        float(np.quantile(means, 1.0 - alpha)),
    )
