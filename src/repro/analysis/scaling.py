"""Growth-model fitting for convergence times.

The central quantitative question of the reproduction is: *how does the
measured parallel time grow with* ``n``?  The paper's protocol is
``Θ(log n · log log n)`` in expectation, GS18 is ``Θ(log² n)``, the slow
protocol ``Θ(n)``.  This module fits measured ``(n, time)`` points against a
small library of one-parameter growth models ``T(n) = c · g(n)`` by least
squares and ranks the models by residual error, so experiments can report
which shape explains the data best (with the caveat — recorded in
EXPERIMENTS.md — that the polylogarithmic shapes are hard to distinguish at
simulable population sizes).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["GrowthModel", "GROWTH_MODELS", "FitResult", "fit_growth_model", "rank_models"]


@dataclass(frozen=True)
class GrowthModel:
    """A one-parameter growth model ``T(n) = c · g(n)``."""

    name: str
    description: str
    shape: Callable[[float], float]

    def evaluate(self, n: float, constant: float = 1.0) -> float:
        """``c · g(n)``."""
        return constant * self.shape(float(n))


def _log2(n: float) -> float:
    return math.log2(max(2.0, n))


GROWTH_MODELS: Dict[str, GrowthModel] = {
    "log": GrowthModel("log", "c · log n", lambda n: _log2(n)),
    "loglog": GrowthModel("loglog", "c · log log n", lambda n: math.log2(max(2.0, _log2(n)))),
    "log_loglog": GrowthModel(
        "log_loglog", "c · log n · log log n", lambda n: _log2(n) * math.log2(max(2.0, _log2(n)))
    ),
    "log2": GrowthModel("log2", "c · log² n", lambda n: _log2(n) ** 2),
    "log3": GrowthModel("log3", "c · log³ n", lambda n: _log2(n) ** 3),
    "sqrt": GrowthModel("sqrt", "c · √n", lambda n: math.sqrt(n)),
    "linear": GrowthModel("linear", "c · n", lambda n: float(n)),
    "nlogn": GrowthModel("nlogn", "c · n log n", lambda n: float(n) * _log2(n)),
}


@dataclass(frozen=True)
class FitResult:
    """Outcome of fitting one growth model to measured points."""

    model: GrowthModel
    constant: float
    residual_rms: float
    relative_rms: float
    points: Tuple[Tuple[float, float], ...]

    def predict(self, n: float) -> float:
        """Model prediction at population size ``n``."""
        return self.model.evaluate(n, self.constant)

    def describe(self) -> str:
        return (
            f"{self.model.description} with c={self.constant:.3g} "
            f"(relative RMS error {self.relative_rms:.1%})"
        )


def fit_growth_model(
    ns: Sequence[float], times: Sequence[float], model: GrowthModel
) -> FitResult:
    """Least-squares fit of ``times ≈ c · g(ns)`` for a single model.

    The optimal constant for a one-parameter linear model is
    ``c = Σ g(n)·T(n) / Σ g(n)²``.
    """
    if len(ns) != len(times):
        raise ConfigurationError(
            f"ns and times must have equal length, got {len(ns)} and {len(times)}"
        )
    if len(ns) == 0:
        raise ConfigurationError("cannot fit a growth model to zero points")
    shapes = np.array([model.shape(float(n)) for n in ns], dtype=np.float64)
    observed = np.asarray(list(times), dtype=np.float64)
    denominator = float(np.dot(shapes, shapes))
    if denominator == 0.0:
        raise ConfigurationError(f"model {model.name} is degenerate on these sizes")
    constant = float(np.dot(shapes, observed) / denominator)
    predictions = constant * shapes
    residuals = observed - predictions
    residual_rms = float(np.sqrt(np.mean(residuals**2)))
    scale = float(np.mean(np.abs(observed))) or 1.0
    return FitResult(
        model=model,
        constant=constant,
        residual_rms=residual_rms,
        relative_rms=residual_rms / scale,
        points=tuple(zip([float(n) for n in ns], [float(t) for t in times])),
    )


def rank_models(
    ns: Sequence[float],
    times: Sequence[float],
    models: Sequence[str] = ("log", "log_loglog", "log2", "linear"),
) -> List[FitResult]:
    """Fit several growth models and return them sorted by relative RMS error."""
    results = []
    for name in models:
        if name not in GROWTH_MODELS:
            raise ConfigurationError(
                f"unknown growth model {name!r}; available: {sorted(GROWTH_MODELS)}"
            )
        results.append(fit_growth_model(ns, times, GROWTH_MODELS[name]))
    return sorted(results, key=lambda fit: fit.relative_rms)
