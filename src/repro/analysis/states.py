"""State-usage accounting.

The space complexity of a population protocol is the number of states each
agent can take.  Empirically we report the number of *distinct states ever
occupied* during a run (``RunResult.states_used``), which lower-bounds the
true state count and, across growing ``n``, exposes the growth order that
Table 1 compares (``O(1)``, ``O(log log n)``, ``O(log n)``, …).  Because
every clock-driven protocol multiplies its space by the constant clock
modulus ``Γ``, the summary also reports states normalised by ``Γ`` where a
protocol exposes one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.stats import SampleSummary, summarize
from repro.engine.simulation import RunResult

__all__ = ["StateUsage", "state_usage_from_results"]


@dataclass(frozen=True)
class StateUsage:
    """Per-(protocol, n) summary of observed state usage."""

    protocol_name: str
    n: int
    states: SampleSummary
    clock_modulus: Optional[int] = None

    @property
    def per_clock_phase(self) -> Optional[float]:
        """Mean observed states divided by the clock modulus, if known."""
        if not self.clock_modulus:
            return None
        return self.states.mean / self.clock_modulus


def state_usage_from_results(
    results: Sequence[RunResult],
    *,
    clock_modulus: Optional[int] = None,
) -> List[StateUsage]:
    """Group run results by (protocol, n) and summarise their state usage."""
    grouped: Dict[tuple, List[int]] = {}
    for result in results:
        grouped.setdefault((result.protocol_name, result.n), []).append(
            result.states_used
        )
    usages = []
    for (protocol_name, n), counts in sorted(grouped.items()):
        usages.append(
            StateUsage(
                protocol_name=protocol_name,
                n=n,
                states=summarize(counts),
                clock_modulus=clock_modulus,
            )
        )
    return usages
