"""Concentration-inequality helpers.

The paper's lemmas are concentration statements ("with very high probability
``C_{ℓ+1}`` lies between ``(9/20)q²n`` and ``(11/10)q²n``", …).  The
validation experiments and property tests check measured counts against
bands derived from the same inequalities; this module provides the small
amount of Chernoff/Hoeffding arithmetic those checks need.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError

__all__ = [
    "chernoff_bound_above",
    "chernoff_bound_below",
    "hoeffding_interval",
    "within_relative_tolerance",
]


def chernoff_bound_above(mean: float, delta: float) -> float:
    """Chernoff bound ``P[X ≥ (1+δ)µ] ≤ exp(−δ²µ/3)`` for sums of independent
    0/1 variables with mean ``µ`` (valid for ``0 < δ ≤ 1``)."""
    if mean < 0:
        raise ConfigurationError(f"mean must be non-negative, got {mean}")
    if not 0 < delta <= 1:
        raise ConfigurationError(f"delta must lie in (0, 1], got {delta}")
    return math.exp(-(delta**2) * mean / 3.0)


def chernoff_bound_below(mean: float, delta: float) -> float:
    """Chernoff bound ``P[X ≤ (1−δ)µ] ≤ exp(−δ²µ/2)``."""
    if mean < 0:
        raise ConfigurationError(f"mean must be non-negative, got {mean}")
    if not 0 < delta < 1:
        raise ConfigurationError(f"delta must lie in (0, 1), got {delta}")
    return math.exp(-(delta**2) * mean / 2.0)


def hoeffding_interval(samples: int, confidence: float = 0.99) -> float:
    """Half-width of a Hoeffding confidence interval for a mean of ``samples``
    values bounded in ``[0, 1]``."""
    if samples < 1:
        raise ConfigurationError(f"samples must be >= 1, got {samples}")
    if not 0 < confidence < 1:
        raise ConfigurationError(f"confidence must lie in (0, 1), got {confidence}")
    return math.sqrt(math.log(2.0 / (1.0 - confidence)) / (2.0 * samples))


def within_relative_tolerance(measured: float, expected: float, tolerance: float) -> bool:
    """Whether ``measured`` is within a multiplicative ``(1 ± tolerance)`` band
    of ``expected`` (used when lemmas only promise constants "close to" one)."""
    if tolerance < 0:
        raise ConfigurationError(f"tolerance must be non-negative, got {tolerance}")
    if expected == 0:
        return abs(measured) <= tolerance
    return abs(measured - expected) <= tolerance * abs(expected)
