"""Cross-engine accuracy comparison harness.

One comparator serves two suites.  The *exact* engines implement the same
probabilistic model with different data structures, so any run statistic
must agree across them **in distribution** — that is
``tests/test_engine_equivalence.py``.  The *approximate* engines
(``tauleap``, ``meanfield``) implement a deliberately different model, so
the same machinery is re-aimed as an accuracy harness with the exact
engines as ground truth: tau-leap must agree distributionally within
documented tolerances, and mean-field must track the exact mean occupancy
curve within an ``O(1/sqrt(n))`` band — that is
``tests/test_engine_approx.py``.

The module provides

* :data:`WORKLOADS` — named benchmark workloads (protocol factory,
  convergence predicate, budget, and a mid-dynamics census statistic),
* :func:`convergence_sample` — convergence times over a seed range,
* :func:`census_sample` — a census statistic at a fixed parallel time
  (mid-dynamics on purpose: *at convergence* most censuses are degenerate
  — every agent informed, a single leader — and a KS test on a constant
  proves nothing),
* :func:`mean_occupancy` — seed-averaged occupancy curves keyed by state,
  using an engine's ``expected_state_counts`` (the mean-field engine's
  native float view) when it has one,
* :func:`max_band_deviation` — the worst occupancy gap between two curve
  sets in ``sqrt(n)`` units, the natural scale of finite-``n``
  fluctuations around the fluid limit.

Statistical comparisons themselves come from :mod:`repro.analysis.stats`
(:func:`~repro.analysis.stats.ks_two_sample`,
:func:`~repro.analysis.stats.quantile_profile_distance`); this module only
standardises *what* is sampled so every suite compares like with like.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Type

import numpy as np

from repro.core.params import GSUParams
from repro.core.protocol import GSULeaderElection
from repro.engine.base import BaseEngine
from repro.engine.protocol import PopulationProtocol
from repro.protocols.approximate_majority import ApproximateMajority
from repro.protocols.epidemic import OneWayEpidemic
from repro.protocols.exact_majority import ExactMajority
from repro.protocols.gs18 import GS18LeaderElection
from repro.protocols.lottery import LotteryLeaderElection
from repro.types import State

__all__ = [
    "AccuracyWorkload",
    "WORKLOADS",
    "convergence_sample",
    "census_sample",
    "mean_occupancy",
    "max_band_deviation",
]


# ----------------------------------------------------------------------
# Convergence predicates and census statistics
# ----------------------------------------------------------------------
def _epidemic_done(engine: BaseEngine) -> bool:
    return OneWayEpidemic.fully_informed(engine.state_counts())


def _majority_done(engine: BaseEngine) -> bool:
    counts = engine.state_counts()
    if counts.get("blank", 0) > 0:
        return False
    return counts.get("A", 0) == 0 or counts.get("B", 0) == 0


def _single_leader(engine: BaseEngine) -> bool:
    return engine.leader_count() == 1


def _exact_majority_done(engine: BaseEngine) -> bool:
    return engine.counts_by_output().get("B", 0) == 0


def _informed_census(engine: BaseEngine) -> float:
    return float(engine.state_counts().get("informed", 0))


def _a_output_census(engine: BaseEngine) -> float:
    return float(engine.counts_by_output().get("A", 0))


def _leader_census(engine: BaseEngine) -> float:
    return float(engine.leader_count())


@dataclass(frozen=True)
class AccuracyWorkload:
    """One named benchmark workload for cross-engine comparison.

    ``factory(n)`` builds a fresh protocol instance (fresh instances
    matter: the compiled table caches per instance, and engines sharing an
    instance would also share identifier-discovery history).  The
    ``census`` statistic is evaluated after ``census_time`` parallel-time
    units — chosen per workload to land mid-dynamics, where the statistic
    still has genuine spread across seeds.
    """

    factory: Callable[[int], PopulationProtocol]
    predicate: Callable[[BaseEngine], bool]
    budget: float  # convergence budget, parallel-time units
    census: Callable[[BaseEngine], float]
    census_time: float  # census sampling point, parallel-time units


#: Named workloads.  The first five mirror the exact cross-engine
#: equivalence suite ("gsu19-closure" registers the reachable closure so
#: identifier layout comes from the BFS instead of lazy discovery);
#: "gs18" and "lottery" extend coverage to the junta-phase and
#: ticket-duel leader-election baselines for the approximate-tier harness.
WORKLOADS: Dict[str, AccuracyWorkload] = {
    "epidemic": AccuracyWorkload(
        lambda n: OneWayEpidemic(), _epidemic_done, 400, _informed_census, 4.0
    ),
    "exact-majority": AccuracyWorkload(
        lambda n: ExactMajority.for_population(n, a_fraction=0.6),
        _exact_majority_done,
        800,
        _a_output_census,
        5.0,
    ),
    "majority": AccuracyWorkload(
        lambda n: ApproximateMajority(initial_a_fraction=0.7),
        _majority_done,
        400,
        _a_output_census,
        3.0,
    ),
    "gsu19": AccuracyWorkload(
        lambda n: GSULeaderElection.for_population(n),
        _single_leader,
        4000,
        _leader_census,
        8.0,
    ),
    "gsu19-closure": AccuracyWorkload(
        lambda n: GSULeaderElection(
            GSUParams(n_hint=10**8, gamma=4, phi=1, psi=1)
        ),
        _single_leader,
        4000,
        _leader_census,
        8.0,
    ),
    "gs18": AccuracyWorkload(
        lambda n: GS18LeaderElection.for_population(n),
        _single_leader,
        4000,
        _leader_census,
        8.0,
    ),
    "lottery": AccuracyWorkload(
        lambda n: LotteryLeaderElection.for_population(n),
        _single_leader,
        10_000,
        _leader_census,
        16.0,
    ),
}


def convergence_sample(
    engine_cls: Type[BaseEngine],
    workload: str,
    n: int,
    seeds: Iterable[int],
    check_every: Optional[int] = None,
) -> List[float]:
    """Convergence times (interactions) of one engine over a range of seeds.

    Every engine checks the predicate on the same cadence (default: every
    ``n // 4`` interactions), so the samples share the same discretisation
    and any distributional gap a KS test sees comes from the engines
    themselves.

    >>> from repro.engine.engine import SequentialEngine
    >>> times = convergence_sample(SequentialEngine, "epidemic", 32, range(2))
    >>> len(times), all(t > 0 for t in times)
    (2, True)
    """
    spec = WORKLOADS[workload]
    if check_every is None:
        check_every = max(1, n // 4)
    times: List[float] = []
    for seed in seeds:
        engine = engine_cls(spec.factory(n), n, rng=seed)
        converged = engine.run_until(
            spec.predicate,
            max_interactions=int(spec.budget * n),
            check_every=check_every,
        )
        assert converged, (
            f"{engine_cls.__name__} failed to converge on {workload} "
            f"(seed {seed}, n={n}, budget {spec.budget} parallel time)"
        )
        times.append(float(engine.interactions))
    return times


def census_sample(
    engine_cls: Type[BaseEngine],
    workload: str,
    n: int,
    seeds: Iterable[int],
) -> List[float]:
    """The workload's census statistic at its fixed mid-dynamics time.

    One value per seed: each engine runs ``census_time`` parallel-time
    units and the workload's census statistic (informed agents, majority
    output count, leader count) is read off the final configuration.
    """
    spec = WORKLOADS[workload]
    values: List[float] = []
    for seed in seeds:
        engine = engine_cls(spec.factory(n), n, rng=seed)
        engine.run_parallel_time(spec.census_time)
        values.append(float(spec.census(engine)))
    return values


def mean_occupancy(
    engine_cls: Type[BaseEngine],
    workload: str,
    n: int,
    seeds: Iterable[int],
    times: Sequence[float],
) -> Dict[State, np.ndarray]:
    """Seed-averaged occupancy curves, keyed by decoded state.

    Returns ``{state: counts}`` where ``counts[i]`` is the mean number of
    agents in ``state`` after ``times[i]`` parallel-time units (``times``
    must be non-decreasing; each run is advanced incrementally through
    them).  States never occupied at a sampling point are reported as 0 —
    keying by decoded state object rather than state id makes curve sets
    from different engines directly comparable even when their lazy
    identifier layouts differ.

    Engines exposing ``expected_state_counts`` (the mean-field engine)
    contribute their float expectations instead of integer counts, so the
    fluid-limit curve is not polluted by rounding.
    """
    times = list(times)
    if any(b < a for a, b in zip(times, times[1:])):
        raise ValueError(f"times must be non-decreasing, got {times}")
    spec = WORKLOADS[workload]
    totals: Dict[State, np.ndarray] = {}
    count = 0
    for seed in seeds:
        count += 1
        engine = engine_cls(spec.factory(n), n, rng=seed)
        expected = getattr(engine, "expected_state_counts", None)
        for index, time in enumerate(times):
            target = int(round(time * n))
            if target > engine.interactions:
                engine.run(target - engine.interactions)
            items = (
                expected().items()
                if expected is not None
                else engine.state_counts().items()
            )
            for state, value in items:
                curve = totals.get(state)
                if curve is None:
                    curve = totals[state] = np.zeros(len(times))
                curve[index] += float(value)
    if count == 0:
        raise ValueError("mean_occupancy needs at least one seed")
    return {state: curve / count for state, curve in totals.items()}


def max_band_deviation(
    reference: Dict[State, np.ndarray],
    candidate: Dict[State, np.ndarray],
    n: int,
) -> float:
    """Worst per-state occupancy gap between two curve sets, in ``sqrt(n)``
    units.

    ``sqrt(n)`` is the natural scale of finite-population fluctuations
    around the mean-field fluid limit, so a mean-field curve is "within
    the O(1/sqrt(n)) band" of an exact mean-occupancy curve when this
    deviation is O(1) — the tests document the concrete constant per
    workload.  States absent from one side count as all-zero curves.

    >>> import numpy as np
    >>> ref = {"a": np.array([100.0, 50.0]), "b": np.array([0.0, 50.0])}
    >>> cand = {"a": np.array([104.0, 50.0]), "b": np.array([0.0, 46.0])}
    >>> max_band_deviation(ref, cand, n=100)
    0.4
    """
    deviation = 0.0
    scale = float(np.sqrt(n))
    for state in set(reference) | set(candidate):
        ref_curve = reference.get(state)
        cand_curve = candidate.get(state)
        if ref_curve is None:
            ref_curve = np.zeros_like(cand_curve)
        if cand_curve is None:
            cand_curve = np.zeros_like(ref_curve)
        gap = float(np.max(np.abs(ref_curve - cand_curve))) / scale
        deviation = max(deviation, gap)
    return deviation
