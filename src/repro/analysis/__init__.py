"""Statistics and model-fitting utilities for experiment results.

The experiments compare measured quantities against the *shapes* the paper
proves (``log n``, ``log n log log n``, ``log² n``, ``n`` …).  This package
provides

* :mod:`repro.analysis.stats` — summaries of repeated runs (means, standard
  errors, quantiles, bootstrap confidence intervals),
* :mod:`repro.analysis.scaling` — least-squares fits of measured times
  against candidate growth models and model selection between them,
* :mod:`repro.analysis.concentration` — Chernoff/Hoeffding helpers used by
  validation tests ("is this count within the concentration band the lemma
  promises?"),
* :mod:`repro.analysis.states` — state-usage accounting across protocols,
* :mod:`repro.analysis.tables` — plain-text / markdown table rendering for
  reports and ``EXPERIMENTS.md``.
"""

from repro.analysis.stats import (
    KSResult,
    SampleSummary,
    bootstrap_mean_ci,
    ks_two_sample,
    quantile,
    quantile_profile_distance,
    summarize,
)
from repro.analysis.scaling import (
    GROWTH_MODELS,
    GrowthModel,
    FitResult,
    fit_growth_model,
    rank_models,
)
from repro.analysis.concentration import (
    chernoff_bound_above,
    chernoff_bound_below,
    hoeffding_interval,
    within_relative_tolerance,
)
from repro.analysis.states import StateUsage, state_usage_from_results
from repro.analysis.tables import format_markdown_table, format_text_table

__all__ = [
    "SampleSummary",
    "summarize",
    "quantile",
    "bootstrap_mean_ci",
    "KSResult",
    "ks_two_sample",
    "quantile_profile_distance",
    "GrowthModel",
    "GROWTH_MODELS",
    "FitResult",
    "fit_growth_model",
    "rank_models",
    "chernoff_bound_above",
    "chernoff_bound_below",
    "hoeffding_interval",
    "within_relative_tolerance",
    "StateUsage",
    "state_usage_from_results",
    "format_markdown_table",
    "format_text_table",
]
