"""One-way epidemic (rumour spreading).

The elementary information-dissemination primitive used throughout the
paper: one agent knows a rumour, and a susceptible responder learns it when
its initiator is informed::

    susceptible + informed → informed + informed

The rumour reaches the whole population in ``Θ(log n)`` parallel time with
high probability (coupon-collector / logistic growth), which the test-suite
verifies — it is the timing fact behind the "broadcast in the late half of a
round" steps of both GS18 and GSU19.
"""

from __future__ import annotations

from typing import Sequence

from repro.engine.protocol import FOLLOWER_OUTPUT, PopulationProtocol
from repro.errors import ConfigurationError

__all__ = ["OneWayEpidemic"]

_INFORMED = "informed"
_SUSCEPTIBLE = "susceptible"


class OneWayEpidemic(PopulationProtocol):
    """Rumour spreading from ``sources`` initially informed agents."""

    name = "one-way-epidemic"

    def __init__(self, sources: int = 1) -> None:
        if sources < 1:
            raise ConfigurationError(f"sources must be >= 1, got {sources}")
        self.sources = sources

    def initial_state(self, n: int) -> str:
        return _SUSCEPTIBLE

    def initial_configuration(self, n: int) -> Sequence[str]:
        if self.sources > n:
            raise ConfigurationError(
                f"sources={self.sources} exceeds population size {n}"
            )
        return [_INFORMED] * self.sources + [_SUSCEPTIBLE] * (n - self.sources)

    def initial_counts(self, n: int):
        # O(k) form for the configuration-level engines (n = 10^7-10^8 runs
        # never materialise a per-agent list).
        if self.sources > n:
            raise ConfigurationError(
                f"sources={self.sources} exceeds population size {n}"
            )
        return {_INFORMED: self.sources, _SUSCEPTIBLE: n - self.sources}

    def transition(self, responder: str, initiator: str):
        if responder == _SUSCEPTIBLE and initiator == _INFORMED:
            return _INFORMED, initiator
        return responder, initiator

    def output(self, state: str) -> str:
        return FOLLOWER_OUTPUT

    def canonical_states(self):
        return [_INFORMED, _SUSCEPTIBLE]

    # ------------------------------------------------------------------
    @staticmethod
    def informed_count(counts: dict) -> int:
        """Number of informed agents in a ``{state: count}`` dictionary."""
        return counts.get(_INFORMED, 0)

    @staticmethod
    def fully_informed(counts: dict) -> bool:
        """Whether the rumour has reached every agent."""
        return counts.get(_SUSCEPTIBLE, 0) == 0
