"""The 3-state approximate-majority protocol of Angluin, Aspnes, Eisenstat
(Distributed Computing 2008).

States ``A``, ``B`` and ``blank``; one-way rules (only the responder
updates)::

    A + B → blank + B        B + A → blank + A
    blank + A → A + A        blank + B → B + B

Starting from an initial gap of ``ω(√n log n)`` between the two opinions, the
whole population adopts the initial majority within ``O(log n)`` parallel
time with high probability.  The protocol is included both as an
engine-validation workload (its behaviour is extremely well known) and
because the paper's introduction motivates population protocols through
majority/consensus tasks.
"""

from __future__ import annotations

from typing import Sequence

from repro.engine.protocol import FOLLOWER_OUTPUT, PopulationProtocol
from repro.errors import ConfigurationError

__all__ = ["ApproximateMajority"]

_A = "A"
_B = "B"
_BLANK = "blank"


class ApproximateMajority(PopulationProtocol):
    """3-state approximate majority.

    Parameters
    ----------
    initial_a_fraction:
        Fraction of agents starting with opinion ``A`` (the rest start with
        ``B``); the initial configuration is deterministic (the first
        ``round(fraction·n)`` agents are ``A``), which is all the scheduler's
        randomness needs.
    """

    name = "approximate-majority"

    def __init__(self, initial_a_fraction: float = 0.7) -> None:
        if not 0.0 <= initial_a_fraction <= 1.0:
            raise ConfigurationError(
                f"initial_a_fraction must lie in [0, 1], got {initial_a_fraction}"
            )
        self.initial_a_fraction = initial_a_fraction

    # ------------------------------------------------------------------
    def initial_state(self, n: int) -> str:
        return _A

    def initial_configuration(self, n: int) -> Sequence[str]:
        a_count = self._initial_a_count(n)
        return [_A] * a_count + [_B] * (n - a_count)

    def initial_counts(self, n: int):
        # O(k) form for the configuration-level engines (n = 10^7-10^8 runs
        # never materialise a per-agent list).
        a_count = self._initial_a_count(n)
        return {_A: a_count, _B: n - a_count}

    def _initial_a_count(self, n: int) -> int:
        a_count = int(round(self.initial_a_fraction * n))
        return min(max(a_count, 0), n)

    def transition(self, responder: str, initiator: str):
        if responder == _A and initiator == _B:
            return _BLANK, initiator
        if responder == _B and initiator == _A:
            return _BLANK, initiator
        if responder == _BLANK and initiator in (_A, _B):
            return initiator, initiator
        return responder, initiator

    def output(self, state: str) -> str:
        # Majority protocols use their own output alphabet; none of the
        # states maps to the leader output.
        return state if state in (_A, _B) else FOLLOWER_OUTPUT

    def canonical_states(self):
        return [_A, _B, _BLANK]

    # ------------------------------------------------------------------
    @staticmethod
    def consensus_reached(counts: dict) -> bool:
        """Whether every agent holds the same non-blank opinion."""
        a = counts.get(_A, 0)
        b = counts.get(_B, 0)
        return (a == 0) != (b == 0) and counts.get(FOLLOWER_OUTPUT, 0) == 0
