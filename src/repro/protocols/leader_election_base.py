"""Shared helpers for leader-election protocols.

Every leader-election protocol in this library maps some of its states to
the leader output ``"L"``; these helpers express common measurement and
convergence idioms against that convention so experiments can treat all
protocols uniformly.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.engine.base import BaseEngine
from repro.engine.convergence import SingleLeader
from repro.engine.protocol import LEADER_OUTPUT, PopulationProtocol
from repro.types import State

__all__ = ["candidate_count", "single_candidate_convergence"]


def candidate_count(engine: BaseEngine) -> int:
    """Number of agents currently mapped to the leader output."""
    return engine.counts_by_output().get(LEADER_OUTPUT, 0)


def single_candidate_convergence(
    protocol: PopulationProtocol,
    extra_condition: Optional[Callable[[BaseEngine], bool]] = None,
) -> SingleLeader:
    """A :class:`SingleLeader` predicate labelled with the protocol's name.

    Protocols that expose their own ``convergence()`` method (like
    :class:`repro.core.GSULeaderElection`) should be preferred; this helper
    covers the simple baselines whose leader-output set is non-increasing
    from the start.
    """
    return SingleLeader(
        extra_condition=extra_condition,
        description=f"single leader for {protocol.name}",
    )
