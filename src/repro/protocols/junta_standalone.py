"""Standalone junta election (the coin-level process on its own).

This protocol runs exactly the level-growth rules of the GSU19 coin
preprocessing (Section 5) — but on a configurable *fraction* of the
population designated as coins up front, with the rest acting as inert
"blockers" that stop any coin they meet.  Setting ``coin_fraction = 0.25``
reproduces the environment the coins see inside the full protocol (where the
other three quarters of the agents are leaders and inhibitors), which is the
workload used by the Figure 1 experiment; setting it to ``1.0`` reproduces
the GS18 whole-population junta election.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.engine.protocol import FOLLOWER_OUTPUT, PopulationProtocol
from repro.errors import ConfigurationError
from repro.types import CoinMode

__all__ = ["JuntaElection", "JuntaState"]


@dataclass(frozen=True)
class JuntaState:
    """State of an agent in the standalone junta election."""

    is_coin: bool = True
    level: int = 0
    mode: CoinMode = CoinMode.ADVANCING


class JuntaElection(PopulationProtocol):
    """Level growth with stopping — the junta-formation process in isolation."""

    name = "junta-election"

    def __init__(self, phi: int, coin_fraction: float = 0.25) -> None:
        if phi < 1:
            raise ConfigurationError(f"phi must be >= 1, got {phi}")
        if not 0.0 < coin_fraction <= 1.0:
            raise ConfigurationError(
                f"coin_fraction must lie in (0, 1], got {coin_fraction}"
            )
        self.phi = phi
        self.coin_fraction = coin_fraction

    @classmethod
    def for_population(
        cls, n: int, *, phi: int = None, coin_fraction: float = 0.25
    ) -> "JuntaElection":
        """Use the same ``Φ`` calibration as the full protocol."""
        from repro.core.params import GSUParams

        params = GSUParams.from_population_size(n)
        return cls(phi=params.phi if phi is None else phi, coin_fraction=coin_fraction)

    # ------------------------------------------------------------------
    def initial_state(self, n: int) -> JuntaState:
        return JuntaState()

    def initial_configuration(self, n: int) -> Sequence[JuntaState]:
        coins = self._coin_count(n)
        return [JuntaState(is_coin=True)] * coins + [
            JuntaState(is_coin=False, mode=CoinMode.STOPPED)
        ] * (n - coins)

    def initial_counts(self, n: int):
        # O(k) form for the configuration-level engines (n = 10^7-10^8 runs
        # never materialise a per-agent list).
        coins = self._coin_count(n)
        return {
            JuntaState(is_coin=True): coins,
            JuntaState(is_coin=False, mode=CoinMode.STOPPED): n - coins,
        }

    def _coin_count(self, n: int) -> int:
        coins = int(round(self.coin_fraction * n))
        return min(max(coins, 1), n)

    def transition(self, responder: JuntaState, initiator: JuntaState):
        if not responder.is_coin or responder.mode != CoinMode.ADVANCING:
            return responder, initiator
        if not initiator.is_coin or initiator.level < responder.level:
            return (
                JuntaState(is_coin=True, level=responder.level, mode=CoinMode.STOPPED),
                initiator,
            )
        if responder.level < self.phi:
            new_level = responder.level + 1
            mode = CoinMode.STOPPED if new_level >= self.phi else CoinMode.ADVANCING
            return JuntaState(is_coin=True, level=new_level, mode=mode), initiator
        return (
            JuntaState(is_coin=True, level=responder.level, mode=CoinMode.STOPPED),
            initiator,
        )

    def output(self, state: JuntaState) -> str:
        return FOLLOWER_OUTPUT

    # ------------------------------------------------------------------
    def junta_size(self, counts: dict) -> int:
        """Number of coins that reached the top level in a state-count dict."""
        return sum(
            count
            for state, count in counts.items()
            if state.is_coin and state.level >= self.phi
        )

    def level_histogram(self, counts: dict) -> dict:
        """``{level: number of coins at exactly that level}``."""
        histogram: dict = {}
        for state, count in counts.items():
            if state.is_coin:
                histogram[state.level] = histogram.get(state.level, 0) + count
        return histogram
