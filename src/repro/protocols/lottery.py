"""A simple ``O(log n)``-state lottery leader election (baseline).

Each agent draws a geometric "ticket" using the synthetic parity coin: while
*growing*, every interaction in which the partner's parity bit reads heads
increases the agent's ticket by one (capped at ``max_ticket ≈ 2 log₂ n``);
the first tails freezes it.  Agents then propagate the largest ticket they
have seen and a candidate that learns of a ticket larger than its own
withdraws.  Remaining ties are resolved by direct encounters (the responder
withdraws), which is what makes the protocol correct but only ``Θ(n)``
expected time overall — without a phase clock there is no broadcast round
structure to resolve ties quickly.

The protocol exists as a Table 1 comparator: it shows that simply spending
``O(log n)`` states on random ranks does not buy polylogarithmic time; the
paper's phase-clock-plus-broadcast machinery is what does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.engine.protocol import FOLLOWER_OUTPUT, LEADER_OUTPUT, PopulationProtocol
from repro.errors import ConfigurationError

__all__ = ["LotteryLeaderElection", "LotteryState"]


@dataclass(frozen=True)
class LotteryState:
    """State of an agent in the lottery protocol."""

    #: Whether this agent is still a leader candidate.
    candidate: bool = True
    #: Whether the ticket is still growing.
    growing: bool = True
    #: The agent's own ticket value.
    ticket: int = 0
    #: Largest ticket value seen anywhere (for max-propagation).
    best_seen: int = 0
    #: Synthetic-coin parity bit.
    parity: int = 0


class LotteryLeaderElection(PopulationProtocol):
    """Geometric-ticket lottery with max-propagation and direct tie-breaks."""

    name = "lottery-leader-election"

    def __init__(self, max_ticket: int) -> None:
        if max_ticket < 1:
            raise ConfigurationError(f"max_ticket must be >= 1, got {max_ticket}")
        self.max_ticket = max_ticket

    @classmethod
    def for_population(cls, n: int) -> "LotteryLeaderElection":
        """Ticket cap ``≈ 2·log₂ n`` so ties at the cap are unlikely."""
        return cls(max_ticket=max(1, int(math.ceil(2 * math.log2(max(2, n))))))

    # ------------------------------------------------------------------
    def initial_state(self, n: int) -> LotteryState:
        return LotteryState()

    def initial_counts(self, n: int):
        # O(k) form for the configuration-level engines (n = 10^7-10^8 runs
        # never materialise a per-agent list).
        return {LotteryState(): n}

    def transition(self, responder: LotteryState, initiator: LotteryState):
        candidate = responder.candidate
        growing = responder.growing
        ticket = responder.ticket

        # Grow the ticket using the partner's parity bit as a fair coin.  A
        # still-growing candidate does not yet track other agents' tickets
        # (keeping its state count at O(log n): ``best_seen`` always equals
        # its own ticket until it stops growing).
        if candidate and growing:
            if initiator.parity == 1 and ticket < self.max_ticket:
                ticket += 1
            else:
                growing = False
            best_seen = ticket
        else:
            best_seen = max(
                responder.best_seen, initiator.best_seen, initiator.ticket, ticket
            )

        # Withdraw when a strictly larger ticket is known.
        if candidate and not growing and best_seen > ticket:
            candidate = False

        # Direct tie-break: two stopped candidates with equal tickets.
        if (
            candidate
            and initiator.candidate
            and not growing
            and not initiator.growing
            and ticket == initiator.ticket
        ):
            candidate = False

        # A follower's only job is relaying the largest ticket it has seen;
        # normalising its other fields keeps the state space at O(log n).
        if not candidate:
            ticket = 0
            growing = False

        new_responder = LotteryState(
            candidate=candidate,
            growing=growing,
            ticket=ticket,
            best_seen=best_seen,
            parity=1 - responder.parity,
        )
        return new_responder, initiator

    def output(self, state: LotteryState) -> str:
        return LEADER_OUTPUT if state.candidate else FOLLOWER_OUTPUT
