"""The constant-space leader election of Angluin et al. (PODC 2004).

Two states: leader (``L``) and follower (``F``); every agent starts as a
leader and whenever two leaders meet, the responder steps down::

    L + L → F + L

The protocol is trivially correct (the number of leaders is non-increasing
and can never reach zero) but slow: the expected parallel time to reach a
single leader is ``Θ(n)`` (the last two leaders need ``Θ(n²)`` interactions
to meet).  It is the "slow backup" used inside the GSU19 protocol and the
first row of the reproduction's Table 1.
"""

from __future__ import annotations

from repro.engine.protocol import FOLLOWER_OUTPUT, LEADER_OUTPUT, PopulationProtocol

__all__ = ["SlowLeaderElection"]

_LEADER = "L"
_FOLLOWER = "F"


class SlowLeaderElection(PopulationProtocol):
    """Two-state, ``Θ(n)`` expected-time leader election."""

    name = "slow-leader-election"

    def initial_state(self, n: int) -> str:
        return _LEADER

    def initial_counts(self, n: int):
        # O(k) form for the configuration-level engines (n = 10^7-10^8 runs
        # never materialise a per-agent list).
        return {_LEADER: n}

    def transition(self, responder: str, initiator: str):
        if responder == _LEADER and initiator == _LEADER:
            return _FOLLOWER, _LEADER
        return responder, initiator

    def output(self, state: str) -> str:
        return LEADER_OUTPUT if state == _LEADER else FOLLOWER_OUTPUT

    def canonical_states(self):
        return [_LEADER, _FOLLOWER]
