"""The 4-state exact-majority protocol (Draief–Vojnović / Mertzios et al.).

States: strong opinions ``A`` and ``B``, weak opinions ``a`` and ``b``.
Rules (both agents may update)::

    A + B → a + b            (two strong opposites cancel out)
    a + B → b + B,  b + A → a + A    (weak agents follow strong ones)
    a + b, b + a → unchanged

With an initial majority the strong minority tokens are eventually all
cancelled and the surviving strong tokens convert every weak agent, so the
population stabilises on the exact initial majority (ties stabilise to the
all-weak configuration).  Expected stabilisation time is ``Θ(n log n)``
interactions for a constant-fraction majority and up to ``Θ(n² log n)`` for
a majority of one.  Included as an engine-validation workload with known
exact-correctness semantics.
"""

from __future__ import annotations

from typing import Sequence

from repro.engine.protocol import FOLLOWER_OUTPUT, PopulationProtocol
from repro.errors import ConfigurationError

__all__ = ["ExactMajority"]

_STRONG_A = "A"
_STRONG_B = "B"
_WEAK_A = "a"
_WEAK_B = "b"


class ExactMajority(PopulationProtocol):
    """4-state exact majority with cancellation and conversion."""

    name = "exact-majority"

    def __init__(self, initial_a: int, initial_b: int) -> None:
        if initial_a < 0 or initial_b < 0:
            raise ConfigurationError("initial opinion counts must be non-negative")
        self.initial_a = initial_a
        self.initial_b = initial_b

    @classmethod
    def for_population(cls, n: int, a_fraction: float = 0.6) -> "ExactMajority":
        """Split ``n`` agents into ``A``/``B`` according to ``a_fraction``."""
        if not 0.0 <= a_fraction <= 1.0:
            raise ConfigurationError(
                f"a_fraction must lie in [0, 1], got {a_fraction}"
            )
        a = int(round(a_fraction * n))
        return cls(initial_a=a, initial_b=n - a)

    # ------------------------------------------------------------------
    def initial_state(self, n: int) -> str:
        return _STRONG_A

    def initial_configuration(self, n: int) -> Sequence[str]:
        self._check_population(n)
        return [_STRONG_A] * self.initial_a + [_STRONG_B] * self.initial_b

    def initial_counts(self, n: int):
        # O(k) form for the configuration-level engines (n = 10^7-10^8 runs
        # never materialise a per-agent list).
        self._check_population(n)
        return {_STRONG_A: self.initial_a, _STRONG_B: self.initial_b}

    def _check_population(self, n: int) -> None:
        if self.initial_a + self.initial_b != n:
            raise ConfigurationError(
                f"initial_a + initial_b = {self.initial_a + self.initial_b} "
                f"does not match n = {n}"
            )

    def transition(self, responder: str, initiator: str):
        # Cancellation of opposite strong opinions (both agents change).
        if responder == _STRONG_A and initiator == _STRONG_B:
            return _WEAK_A, _WEAK_B
        if responder == _STRONG_B and initiator == _STRONG_A:
            return _WEAK_B, _WEAK_A
        # Weak agents adopt the opinion of a strong initiator.
        if responder == _WEAK_A and initiator == _STRONG_B:
            return _WEAK_B, initiator
        if responder == _WEAK_B and initiator == _STRONG_A:
            return _WEAK_A, initiator
        return responder, initiator

    def output(self, state: str) -> str:
        if state in (_STRONG_A, _WEAK_A):
            return "A"
        if state in (_STRONG_B, _WEAK_B):
            return "B"
        return FOLLOWER_OUTPUT  # pragma: no cover - unreachable

    def canonical_states(self):
        return [_STRONG_A, _STRONG_B, _WEAK_A, _WEAK_B]

    # ------------------------------------------------------------------
    @staticmethod
    def majority_output(counts: dict) -> str:
        """The output the population currently reports ("A", "B" or "tie")."""
        a = counts.get("A", 0)
        b = counts.get("B", 0)
        if a and not b:
            return "A"
        if b and not a:
            return "B"
        return "tie"
