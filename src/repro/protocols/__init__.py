"""Baseline and classic population protocols.

These protocols serve three purposes in the reproduction:

* **Comparators for Table 1** — the constant-space protocol of Angluin et al.
  (:class:`SlowLeaderElection`), a simple ``O(log n)``-state lottery protocol
  (:class:`LotteryLeaderElection`) and a GS18-style ``O(log² n)``-time
  protocol (:class:`GS18LeaderElection`) are simulated alongside the paper's
  protocol so the time/space trade-off of Table 1 can be measured rather
  than only cited.
* **Engine validation** — the 3-state approximate-majority and 4-state exact
  majority protocols and the one-way epidemic have well-known behaviour
  (convergence times, correctness conditions) against which the simulation
  substrate is tested.
* **Building blocks** — the standalone junta-election protocol exposes the
  coin-level machinery outside the full GSU19 protocol for the Figure 1
  experiments.
"""

from repro.protocols.leader_election_base import (
    candidate_count,
    single_candidate_convergence,
)
from repro.protocols.slow import SlowLeaderElection
from repro.protocols.lottery import LotteryLeaderElection
from repro.protocols.gs18 import GS18LeaderElection
from repro.protocols.approximate_majority import ApproximateMajority
from repro.protocols.exact_majority import ExactMajority
from repro.protocols.epidemic import OneWayEpidemic
from repro.protocols.junta_standalone import JuntaElection

__all__ = [
    "candidate_count",
    "single_candidate_convergence",
    "SlowLeaderElection",
    "LotteryLeaderElection",
    "GS18LeaderElection",
    "ApproximateMajority",
    "ExactMajority",
    "OneWayEpidemic",
    "JuntaElection",
]
