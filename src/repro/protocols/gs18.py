"""A GS18-style ``O(log² n)``-time, ``O(log log n)``-state leader election.

This is the reproduction's main comparator: the space-optimal protocol of
Gąsieniec & Stachowiak (SODA 2018) that the paper improves upon.  The
structure mirrors the original:

1. **Junta formation** — every agent grows a level exactly like the coin
   preprocessing of GSU19 (meet a lower level or run out of luck → stop;
   meet an equal-or-higher level → advance); agents reaching level ``Φ``
   form the junta that drives the phase clock.
2. **Phase-clock rounds** — all agents keep a ``Γ``-phase clock pushed by
   the junta, exactly as in Section 3 of the paper.
3. **Fair-coin elimination** — every agent starts as a leader candidate.  In
   the early half of each round, every remaining candidate flips an
   (almost) fair synthetic coin — the parity bit of its interaction partner;
   in the late half the candidates that flipped heads broadcast this fact
   and every tails candidate that hears it withdraws.  With a constant-bias
   coin the candidate count halves per round, so ``Θ(log n)`` rounds of
   ``Θ(log n)`` parallel time each are needed — the ``O(log² n)`` bound the
   GSU19 paper breaks.
4. **Backup** — two candidates meeting directly resolve in favour of the
   initiator, which keeps the protocol a Las Vegas algorithm.

The per-agent state count is ``Γ · O(log log n)`` — the same order as GSU19 —
so Table 1's "states" column can be compared empirically as well.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.clocks.phase_clock import PhaseClockRules
from repro.core.params import GSUParams
from repro.engine.protocol import FOLLOWER_OUTPUT, LEADER_OUTPUT, PopulationProtocol
from repro.types import CoinMode, Flip

__all__ = ["GS18LeaderElection", "GS18State"]


@dataclass(frozen=True)
class GS18State:
    """State of an agent in the GS18-style protocol."""

    phase: int = 0
    level: int = 0
    level_mode: CoinMode = CoinMode.ADVANCING
    candidate: bool = True
    flip: Flip = Flip.NONE
    void: bool = True
    parity: int = 0
    #: True once the agent has observed the clock running (first pass through
    #: 0); candidates only start flipping from their second round on, when
    #: the junta has stabilised.
    started: bool = False


class GS18LeaderElection(PopulationProtocol):
    """Junta clock + repeated fair synthetic coin flips (``O(log² n)`` whp)."""

    name = "gs18-leader-election"

    def __init__(self, params: GSUParams) -> None:
        self.params = params
        self.clock = PhaseClockRules(params.gamma)

    @classmethod
    def for_population(
        cls, n: int, *, gamma: Optional[int] = None, phi: Optional[int] = None
    ) -> "GS18LeaderElection":
        """Build the protocol with parameters derived from ``n``.

        The junta level ``Φ`` is a few levels higher than GSU19's because
        here the *whole* population (not only the coin quarter) runs the
        level process and the first squarings barely thin it out, so extra
        levels are needed to reach a junta of size well below ``n``.
        """
        base = GSUParams.from_population_size(n, gamma=gamma)
        if phi is None:
            phi = base.phi + 3
        return cls(GSUParams.from_population_size(n, gamma=base.gamma, phi=phi))

    # ------------------------------------------------------------------
    def initial_state(self, n: int) -> GS18State:
        return GS18State()

    def initial_counts(self, n: int):
        # O(k) form for the configuration-level engines (n = 10^7-10^8 runs
        # never materialise a per-agent list).
        return {GS18State(): n}

    def transition(self, responder: GS18State, initiator: GS18State):
        params = self.params
        clock = self.clock

        # Phase clock (junta = agents at the top level).
        old_phase = responder.phase
        is_junta = responder.level >= params.phi
        new_phase = clock.advance(old_phase, initiator.phase, is_junta)
        passed_zero = clock.passed_zero(old_phase, new_phase)
        early = clock.is_early(old_phase, new_phase)
        late = clock.is_late(old_phase, new_phase)

        level = responder.level
        level_mode = responder.level_mode
        candidate = responder.candidate
        flip = responder.flip
        void = responder.void
        started = responder.started

        # Junta formation (same rules as GSU19 coin preprocessing, applied to
        # the whole population).
        if level_mode == CoinMode.ADVANCING:
            if initiator.level < level:
                level_mode = CoinMode.STOPPED
            elif level < params.phi:
                level += 1
                if level >= params.phi:
                    level_mode = CoinMode.STOPPED
            else:
                level_mode = CoinMode.STOPPED

        # Round boundary: clear the flip, mark the round void, note the clock
        # is running.
        if passed_zero:
            flip = Flip.NONE
            void = True
            started = True

        # Early half: flip the fair synthetic coin (the partner's parity bit).
        if early and candidate and started and flip == Flip.NONE:
            if initiator.parity == 1:
                flip = Flip.HEADS
                void = False
            else:
                flip = Flip.TAILS

        # Late half: heads epidemic among candidates / former candidates.
        if late and void and not initiator.void:
            if candidate and flip == Flip.TAILS:
                candidate = False
            void = False

        # Backup: two candidates meeting directly -> the responder withdraws.
        if candidate and initiator.candidate:
            candidate = False

        # Followers do not need flip/void bookkeeping beyond the epidemic bit.
        if not candidate:
            flip = Flip.NONE

        new_responder = GS18State(
            phase=new_phase,
            level=level,
            level_mode=level_mode,
            candidate=candidate,
            flip=flip,
            void=void,
            parity=1 - responder.parity,
            started=started,
        )
        if new_responder == responder:
            return responder, initiator
        return new_responder, initiator

    def output(self, state: GS18State) -> str:
        return LEADER_OUTPUT if state.candidate else FOLLOWER_OUTPUT

    # ------------------------------------------------------------------
    def phase_of(self, state: GS18State) -> int:
        """Clock-phase accessor (round-tracking utilities)."""
        return state.phase

    def is_junta_member(self, state: GS18State) -> bool:
        """Whether the agent drives the phase clock."""
        return state.level >= self.params.phi
