"""repro — reproduction of GSU19 leader election in population protocols.

This package reproduces, as a standalone Python library, the system described
in *"Almost Logarithmic-Time Space Optimal Leader Election in Population
Protocols"* (Gąsieniec, Stachowiak, Uznański; SPAA 2019): an
``O(log n · log log n)`` expected-time, ``O(log log n)``-state leader-election
population protocol, together with every substrate it relies on (random
scheduler simulation engines, junta-driven phase clocks, assorted synthetic
coins, inhibitor-driven drag counters) and the baseline protocols it is
compared against.

Quick start::

    from repro import GSULeaderElection, run_protocol

    n = 1 << 10
    protocol = GSULeaderElection.for_population(n)
    result = run_protocol(protocol, n, seed=7, max_parallel_time=4000)
    print(result.summary())          # exactly one leader, parallel time, states used

See ``README.md`` for the architecture overview, ``DESIGN.md`` for the
system inventory and ``EXPERIMENTS.md`` for the paper-versus-measured record.
"""

from __future__ import annotations

__version__ = "1.0.0"

from repro.engine import (
    BatchEngine,
    CountEngine,
    PopulationProtocol,
    RunResult,
    SequentialEngine,
    Simulation,
    run_many,
    run_protocol,
)
from repro.core import GSULeaderElection, GSUParams
from repro.protocols import (
    ApproximateMajority,
    GS18LeaderElection,
    LotteryLeaderElection,
    SlowLeaderElection,
)

__all__ = [
    "__version__",
    "PopulationProtocol",
    "SequentialEngine",
    "CountEngine",
    "BatchEngine",
    "Simulation",
    "RunResult",
    "run_protocol",
    "run_many",
    "GSULeaderElection",
    "GSUParams",
    "SlowLeaderElection",
    "LotteryLeaderElection",
    "GS18LeaderElection",
    "ApproximateMajority",
]
