"""Experiment harness: one module per paper table / figure plus lemma checks.

Every experiment follows the same pattern: a workload generator (protocol +
population sizes + seeds), a measurement loop built on
:func:`repro.engine.simulation.run_protocol`, and a reporting step that
produces an :class:`~repro.experiments.runner.ExperimentResult` containing
the same rows/series the paper reports.  ``repro.cli`` exposes them from the
command line and the ``benchmarks/`` directory wraps each one in a
pytest-benchmark target.

========================  ===================================================
experiment id             reproduces
========================  ===================================================
``table1``                Table 1 — states vs. time across protocols
``figure1``               Figure 1 — coin level populations and biases
``figure2``               Figure 2 — fast-elimination candidate counts
``figure3``               Figure 3 — slowing-down drag counter ticks
``lemma41``               Lemma 4.1 — uninitialised agents are ``O(n/log n)``
``lemma53``               Lemma 5.3 — junta size window
``lemma71``               Lemma 7.1 — inhibitor drag-group sizes
``lemma73``               Lemma 7.3 — final-elimination round count
``clock``                 Theorem 3.2 — phase-clock round length
========================  ===================================================
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult, ExperimentTable
from repro.experiments.registry import (
    available_experiments,
    experiment_key,
    get_experiment,
    run_experiment,
)
from repro.experiments.store import ExperimentStore
from repro.experiments import io as experiment_io

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "ExperimentStore",
    "ExperimentTable",
    "available_experiments",
    "experiment_key",
    "get_experiment",
    "run_experiment",
    "experiment_io",
]
