"""Persistence of experiment results (CSV, JSON, markdown).

The CLI writes every experiment's tables to an output directory so results
can be versioned and diffed; ``EXPERIMENTS.md`` embeds the markdown
rendering of the default-configuration runs.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Union

from repro.errors import ExperimentError
from repro.experiments.runner import ExperimentResult, ExperimentTable

__all__ = ["write_table_csv", "write_result_json", "write_result_markdown", "write_result"]

PathLike = Union[str, Path]


def write_table_csv(table: ExperimentTable, path: PathLike) -> Path:
    """Write one table as CSV."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.headers)
        for row in table.rows:
            writer.writerow(row)
    return path


def write_result_json(result: ExperimentResult, path: PathLike) -> Path:
    """Write a full experiment result as JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "experiment": result.experiment,
        "description": result.description,
        "metadata": {key: _jsonable(value) for key, value in result.metadata.items()},
        "wall_clock_seconds": result.wall_clock_seconds,
        "tables": [
            {
                "name": table.name,
                "headers": table.headers,
                "rows": [[_jsonable(cell) for cell in row] for row in table.rows],
            }
            for table in result.tables
        ],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def write_result_markdown(result: ExperimentResult, path: PathLike) -> Path:
    """Write a full experiment result as markdown."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(result.to_markdown())
    return path


def write_result(result: ExperimentResult, directory: PathLike) -> Path:
    """Write JSON, markdown and per-table CSVs under ``directory/<experiment>``."""
    directory = Path(directory) / result.experiment
    try:
        directory.mkdir(parents=True, exist_ok=True)
    except OSError as exc:  # pragma: no cover - environment dependent
        raise ExperimentError(f"cannot create output directory {directory}: {exc}") from exc
    write_result_json(result, directory / "result.json")
    write_result_markdown(result, directory / "result.md")
    for table in result.tables:
        safe = table.name.replace(" ", "_").replace("/", "-")
        write_table_csv(table, directory / f"{safe}.csv")
    return directory


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return str(value)
