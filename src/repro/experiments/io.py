"""Persistence: experiment results (CSV, JSON, markdown) and run checkpoints.

Two kinds of artefact are written here:

* **Experiment results** — the CLI writes every experiment's tables to an
  output directory so results can be versioned and diffed;
  ``EXPERIMENTS.md`` embeds the markdown rendering of the
  default-configuration runs.  :func:`read_result_json` round-trips the JSON
  form back into an :class:`~repro.experiments.runner.ExperimentResult`,
  which is what the on-disk experiment store
  (:mod:`repro.experiments.store`) builds on.
* **Run checkpoints** — :func:`write_checkpoint` / :func:`read_checkpoint`
  persist engine snapshots (:meth:`repro.engine.base.BaseEngine.snapshot`)
  in a versioned envelope.  Checkpoints are written **atomically**
  (temp file in the target directory, then ``os.replace``), so a crash
  mid-write can never leave a truncated checkpoint behind — the previous
  complete checkpoint simply survives.  Snapshots contain arbitrary
  protocol state objects, so the payload is pickled; checkpoints are a
  *resume* format for your own runs, not an interchange format.
"""

from __future__ import annotations

import csv
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Union

from repro.errors import CheckpointError, ExperimentError
from repro.experiments.runner import ExperimentResult, ExperimentTable

__all__ = [
    "write_table_csv",
    "write_result_json",
    "read_result_json",
    "result_to_jsonable",
    "result_from_jsonable",
    "write_result_markdown",
    "write_result",
    "write_checkpoint",
    "read_checkpoint",
    "atomic_write_text",
    "jsonable",
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
]

PathLike = Union[str, Path]

#: Identifies a repro checkpoint file (first key of the pickled envelope).
CHECKPOINT_MAGIC = "repro-checkpoint"
#: Envelope version; bump on incompatible layout changes.  The engine
#: snapshot inside carries its own version
#: (:data:`repro.engine.base.SNAPSHOT_VERSION`).
CHECKPOINT_VERSION = 1


# ----------------------------------------------------------------------
# Atomic write helpers
# ----------------------------------------------------------------------
def _atomic_write_bytes(path: Path, data: bytes) -> Path:
    """Write ``data`` to ``path`` through a same-directory temp file.

    ``os.replace`` is atomic on POSIX and Windows when source and target
    share a filesystem, which the same-directory temp file guarantees;
    readers therefore only ever observe complete files.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    handle = tempfile.NamedTemporaryFile(
        dir=path.parent, prefix=f".{path.name}.", delete=False
    )
    try:
        with handle:
            handle.write(data)
        os.replace(handle.name, path)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise
    return path


def atomic_write_text(path: PathLike, text: str) -> Path:
    """Atomically write ``text`` to ``path`` (write-replace, never truncate)."""
    return _atomic_write_bytes(Path(path), text.encode("utf-8"))


# ----------------------------------------------------------------------
# Experiment results
# ----------------------------------------------------------------------
def write_table_csv(table: ExperimentTable, path: PathLike) -> Path:
    """Write one table as CSV."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.headers)
        for row in table.rows:
            writer.writerow(row)
    return path


def result_to_jsonable(result: ExperimentResult) -> dict:
    """Plain-data (JSON-serialisable) form of an experiment result."""
    return {
        "experiment": result.experiment,
        "description": result.description,
        "metadata": {key: jsonable(value) for key, value in result.metadata.items()},
        "wall_clock_seconds": result.wall_clock_seconds,
        "tables": [
            {
                "name": table.name,
                "headers": table.headers,
                "rows": [[jsonable(cell) for cell in row] for row in table.rows],
            }
            for table in result.tables
        ],
    }


def result_from_jsonable(payload: dict) -> ExperimentResult:
    """Rebuild an :class:`ExperimentResult` from :func:`result_to_jsonable`.

    Cell values come back as whatever JSON preserved (numbers, strings,
    booleans); values that were stringified on the way out stay strings.
    """
    return ExperimentResult(
        experiment=payload["experiment"],
        description=payload["description"],
        tables=[
            ExperimentTable(
                name=table["name"],
                headers=list(table["headers"]),
                rows=[list(row) for row in table["rows"]],
            )
            for table in payload.get("tables", [])
        ],
        metadata=dict(payload.get("metadata", {})),
        wall_clock_seconds=float(payload.get("wall_clock_seconds", 0.0)),
    )


def write_result_json(result: ExperimentResult, path: PathLike) -> Path:
    """Write a full experiment result as JSON (atomically)."""
    path = Path(path)
    return atomic_write_text(
        path, json.dumps(result_to_jsonable(result), indent=2, sort_keys=True)
    )


def read_result_json(path: PathLike) -> ExperimentResult:
    """Read an experiment result previously written by :func:`write_result_json`."""
    payload = json.loads(Path(path).read_text())
    return result_from_jsonable(payload)


def write_result_markdown(result: ExperimentResult, path: PathLike) -> Path:
    """Write a full experiment result as markdown (atomically)."""
    return atomic_write_text(Path(path), result.to_markdown())


def write_result(result: ExperimentResult, directory: PathLike) -> Path:
    """Write JSON, markdown and per-table CSVs under ``directory/<experiment>``."""
    directory = Path(directory) / result.experiment
    try:
        directory.mkdir(parents=True, exist_ok=True)
    except OSError as exc:  # pragma: no cover - environment dependent
        raise ExperimentError(f"cannot create output directory {directory}: {exc}") from exc
    write_result_json(result, directory / "result.json")
    write_result_markdown(result, directory / "result.md")
    for table in result.tables:
        safe = table.name.replace(" ", "_").replace("/", "-")
        write_table_csv(table, directory / f"{safe}.csv")
    return directory


# ----------------------------------------------------------------------
# Run checkpoints
# ----------------------------------------------------------------------
def write_checkpoint(payload: dict, path: PathLike) -> Path:
    """Atomically persist a checkpoint payload to ``path``.

    ``payload`` is typically the dictionary built by
    :meth:`repro.engine.simulation.Simulation.write_checkpoint` (an engine
    snapshot plus run metadata), but any picklable dictionary is accepted.
    The on-disk form is a versioned pickled envelope; a crash mid-write
    leaves the previous checkpoint intact (write-replace).
    """
    envelope = {
        "format": CHECKPOINT_MAGIC,
        "version": CHECKPOINT_VERSION,
        "payload": payload,
    }
    return _atomic_write_bytes(
        Path(path), pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL)
    )


def read_checkpoint(path: PathLike) -> dict:
    """Read a checkpoint written by :func:`write_checkpoint`.

    Raises :class:`~repro.errors.CheckpointError` when the file is not a
    repro checkpoint or carries an unsupported envelope version.
    """
    path = Path(path)
    try:
        with path.open("rb") as handle:
            envelope = pickle.load(handle)
    except (OSError, pickle.UnpicklingError, EOFError) as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    if not isinstance(envelope, dict) or envelope.get("format") != CHECKPOINT_MAGIC:
        raise CheckpointError(f"{path} is not a repro checkpoint file")
    version = envelope.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has envelope version {version!r}; this build "
            f"supports {CHECKPOINT_VERSION}"
        )
    return envelope["payload"]


def jsonable(value):
    """Recursively coerce ``value`` into JSON-serialisable plain data.

    Containers are walked; anything not natively representable falls back
    to ``str``.  Shared by the result writers and the experiment store's
    content hashing; the walk itself is :func:`repro.types.plain_data`.
    """
    from repro.types import plain_data

    return plain_data(value, fallback=str)


# Backwards-compatible private alias (pre-store callers imported _jsonable).
_jsonable = jsonable
