"""On-disk experiment store: content-addressed caching of completed runs.

The store makes sweeps **resumable at cell granularity**.  A *cell* is one
``(protocol, n, seed, engine, convergence, budget)`` combination — exactly
the inputs that determine a :class:`~repro.engine.simulation.RunResult` —
and its key is the SHA-256 of the canonical JSON rendering of those inputs
(the protocol contributes its
:meth:`~repro.engine.protocol.PopulationProtocol.fingerprint`).  Completed
cells are written as small JSON files under ``<store>/cells/``;
:func:`repro.engine.parallel.run_many` consults the store before running a
cell and **streams every completed cell in as it finishes** (completion
order, not submission order — the sweep scheduler records each work unit
the moment its future resolves), so an interrupted 45-minute sweep loses
at most the cells in flight and a restart with the same arguments redoes
none of the finished work.  Cell keys are independent of how the
scheduler executed the cell: serial, multi-process and replica-vectorised
runs of the same cell produce the same key and the same result, so stores
written by any mode resume any other.

The registry layer caches at coarser granularity: a full
:class:`~repro.experiments.runner.ExperimentResult` keyed by
``(experiment name, configuration)`` lands under ``<store>/experiments/``,
which is what the CLI's ``--store DIR --resume`` flags use to skip whole
completed experiments on a rerun.

All writes are atomic (write-replace through
:func:`repro.experiments.io.atomic_write_text`), so a crash can only lose
the cell in flight, never corrupt the store.  Keys are *conservative*: any
input difference — another seed, another engine spec, a different budget —
changes the key, so the store can return stale results only if two
genuinely different protocols produce equal fingerprints (see
``fingerprint`` for the one documented caveat around ad-hoc callables).

State keys in a stored ``final_counts`` round-trip **unchanged for string
states** (the common case: ``"informed"``, ``"L"`` …), so cached and fresh
cells aggregate identically; non-string states (tuples, dataclasses) are
serialised as their ``repr`` strings, and a loaded :class:`RunResult` then
carries ``{repr(state): count}``.  Output counts, the fields every
experiment aggregates, always round-trip unchanged.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Optional, Union

from repro.engine.simulation import RunResult
from repro.errors import ExperimentError
from repro.experiments.io import (
    atomic_write_text,
    jsonable,
    result_from_jsonable,
    result_to_jsonable,
)
from repro.experiments.runner import ExperimentResult

__all__ = ["ExperimentStore", "content_key", "canonical_engine_spec"]

#: Format tags written into every store record.
_CELL_FORMAT = "repro-store-cell"
_EXPERIMENT_FORMAT = "repro-store-experiment"
_STORE_VERSION = 1


def content_key(inputs: dict) -> str:
    """SHA-256 over the canonical JSON rendering of ``inputs``.

    ``inputs`` is first coerced to plain data (:func:`jsonable`), then
    serialised with sorted keys and no insignificant whitespace, so the key
    is independent of dictionary ordering and Python version.
    """
    canonical = json.dumps(
        jsonable(inputs), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def canonical_engine_spec(engine) -> str:
    """Stable string form of an engine specification for cell keys.

    Names pass through lower-cased, ``None`` maps to the default
    (``"sequential"``), and classes render as ``module.QualName``.  Note
    that ``"auto"`` is kept as-is: the dispatch *policy* is part of the
    cell identity (a rerun on a machine where ``auto`` resolves
    differently still reuses the cell, which is sound because every
    auto-dispatchable engine is exact).
    """
    if engine is None:
        return "sequential"
    if isinstance(engine, str):
        return engine.lower()
    if isinstance(engine, type):
        return f"{engine.__module__}.{engine.__qualname__}"
    raise ExperimentError(
        f"cannot canonicalise engine specification {engine!r} for the store"
    )


def _state_key(state) -> object:
    """Serialisable form of a state used as a ``final_counts`` key.

    String states — the common case across the baseline protocols — are
    stored as themselves so cached and freshly computed results are
    indistinguishable; anything richer (tuples, dataclasses) falls back to
    ``repr``, which is the documented loaded-record form.
    """
    return state if isinstance(state, str) else repr(state)


def _result_to_record(result: RunResult) -> dict:
    return {
        "protocol_name": result.protocol_name,
        "n": result.n,
        "seed": result.seed,
        "converged": result.converged,
        "interactions": result.interactions,
        "parallel_time": result.parallel_time,
        "states_used": result.states_used,
        "final_counts": [
            [_state_key(state), count] for state, count in result.final_counts.items()
        ],
        "final_outputs": dict(result.final_outputs),
        "wall_clock_seconds": result.wall_clock_seconds,
        "metadata": jsonable(result.metadata),
    }


def _result_from_record(record: dict) -> RunResult:
    return RunResult(
        protocol_name=record["protocol_name"],
        n=int(record["n"]),
        seed=record["seed"],
        converged=bool(record["converged"]),
        interactions=int(record["interactions"]),
        parallel_time=float(record["parallel_time"]),
        states_used=int(record["states_used"]),
        final_counts={state: int(count) for state, count in record["final_counts"]},
        final_outputs={
            symbol: int(count) for symbol, count in record["final_outputs"].items()
        },
        wall_clock_seconds=float(record.get("wall_clock_seconds", 0.0)),
        metadata=dict(record.get("metadata", {})),
    )


class ExperimentStore:
    """Content-addressed on-disk cache of completed runs and experiments.

    Parameters
    ----------
    directory:
        Root of the store; created on first write.  Layout::

            <directory>/cells/<key>.json          one RunResult per file
            <directory>/experiments/<key>.json    one ExperimentResult per file

    The instance keeps simple counters (``loaded``/``stored``) so drivers
    and tests can assert how much work a resumed sweep actually skipped.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.loaded = 0
        self.stored = 0

    @classmethod
    def ensure(
        cls, store: Union["ExperimentStore", str, Path, None]
    ) -> Optional["ExperimentStore"]:
        """Normalise ``store`` arguments: path-likes become stores, ``None``
        passes through."""
        if store is None or isinstance(store, cls):
            return store
        return cls(store)

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------
    def cell_inputs(
        self,
        protocol,
        n: int,
        seed,
        *,
        engine=None,
        convergence: Optional[str] = None,
        max_parallel_time: float,
        extra: Optional[dict] = None,
    ) -> dict:
        """The canonical input dictionary identifying one sweep cell."""
        inputs = {
            "kind": "run-cell",
            "protocol": protocol.fingerprint(),
            "n": int(n),
            "seed": seed,
            "engine": canonical_engine_spec(engine),
            "convergence": convergence if convergence is not None else "default",
            "max_parallel_time": float(max_parallel_time),
        }
        if extra:
            inputs["extra"] = extra
        return inputs

    # ------------------------------------------------------------------
    # Cell records (RunResult)
    # ------------------------------------------------------------------
    def _cell_path(self, key: str) -> Path:
        return self.directory / "cells" / f"{key}.json"

    def load_result(self, key: str) -> Optional[RunResult]:
        """Completed cell for ``key``, or ``None`` when absent/unreadable.

        Unreadable records (truncated by an unclean filesystem, foreign
        files) are treated as misses — the cell is simply recomputed and
        rewritten, which is always safe.
        """
        path = self._cell_path(key)
        if not path.exists():
            return None
        try:
            record = json.loads(path.read_text())
            if record.get("format") != _CELL_FORMAT:
                return None
            result = _result_from_record(record["result"])
        except (OSError, ValueError, KeyError, TypeError):
            return None
        self.loaded += 1
        return result

    def save_result(
        self, key: str, result: RunResult, inputs: Optional[dict] = None
    ) -> Path:
        """Persist a completed cell under ``key`` (atomic write-replace).

        ``inputs`` — the dictionary the key was hashed from — is embedded
        verbatim so store files are self-describing and auditable.
        """
        record = {
            "format": _CELL_FORMAT,
            "version": _STORE_VERSION,
            "key": key,
            "inputs": jsonable(inputs) if inputs is not None else None,
            "result": _result_to_record(result),
        }
        path = atomic_write_text(
            self._cell_path(key), json.dumps(record, indent=1, sort_keys=True)
        )
        self.stored += 1
        return path

    # ------------------------------------------------------------------
    # Experiment records (ExperimentResult)
    # ------------------------------------------------------------------
    def _experiment_path(self, key: str) -> Path:
        return self.directory / "experiments" / f"{key}.json"

    def load_experiment(self, key: str) -> Optional[ExperimentResult]:
        """Completed experiment for ``key``, or ``None`` (misses include
        unreadable records, as for :meth:`load_result`)."""
        path = self._experiment_path(key)
        if not path.exists():
            return None
        try:
            record = json.loads(path.read_text())
            if record.get("format") != _EXPERIMENT_FORMAT:
                return None
            result = result_from_jsonable(record["result"])
        except (OSError, ValueError, KeyError, TypeError):
            return None
        self.loaded += 1
        return result

    def save_experiment(
        self, key: str, result: ExperimentResult, inputs: Optional[dict] = None
    ) -> Path:
        """Persist a completed experiment under ``key`` (atomic)."""
        record = {
            "format": _EXPERIMENT_FORMAT,
            "version": _STORE_VERSION,
            "key": key,
            "inputs": jsonable(inputs) if inputs is not None else None,
            "result": result_to_jsonable(result),
        }
        path = atomic_write_text(
            self._experiment_path(key), json.dumps(record, indent=1, sort_keys=True)
        )
        self.stored += 1
        return path

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ExperimentStore {str(self.directory)!r} "
            f"loaded={self.loaded} stored={self.stored}>"
        )
