"""Experiment ``matrix`` — protocols × scenarios re-election matrix.

The paper's protocols are analysed under the classical model: complete
interaction graph, no churn, no faults.  This experiment probes how the
simulable leader-election protocols behave when those assumptions are
relaxed along the scenario axis (:mod:`repro.scenarios`): restricted
interaction topologies (cycle, 2D torus grid, random 4-regular graph),
Poisson churn (agents joining in the protocol's initial state force
*re-election* — a fresh joiner is a new leader candidate), and crash-stop
faults (the elected leader may die, so the census of *alive* leaders is
what must reach one).

Each (protocol, scenario) cell runs ``config.repetitions`` seeds of the
protocol at one population size (the sweep sizes capped to
``config.slow_protocol_max_n`` — the Θ(n)-time baselines set the scale)
under :class:`~repro.scenarios.SingleAliveLeader` convergence: a run
*passes* when it reaches exactly one alive leader within the parallel-time
budget.  A cell is ``PASS`` when a majority of its seeds pass.

The report contains (a) the pass/fail grid, and (b) a per-cell detail
table with convergence counts, mean parallel time over converged runs and
the scenario event counters (joins / leaves / crashes / drops) actually
experienced.
"""

from __future__ import annotations

from typing import List

from repro.analysis.stats import summarize
from repro.engine.rng import spawn_seeds
from repro.engine.simulation import run_protocol
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult, timed
from repro.experiments.table1 import SIMULATED_PROTOCOLS
from repro.scenarios import SingleAliveLeader, get_scenario

__all__ = ["run_matrix", "MATRIX_PROTOCOLS", "MATRIX_SCENARIOS"]

#: Protocols on the matrix rows — the simulable Table 1 protocols.
MATRIX_PROTOCOLS: List[tuple] = [
    (name, factory) for name, factory, _is_slow in SIMULATED_PROTOCOLS
]

#: Scenario registry names on the matrix columns.  ``complete`` is the
#: classical-model control column; the others exercise each scenario axis
#: (topology, churn, crash faults) alone and one topology+churn combination.
MATRIX_SCENARIOS: List[str] = [
    "complete",
    "cycle",
    "grid2d",
    "random-regular-4",
    "churn",
    "crash",
    "cycle-churn",
]

#: Cap on the per-run parallel-time budget: re-election cells either settle
#: within a couple of thousand parallel-time units at matrix sizes or keep
#: churning forever, so longer budgets only buy wall clock.
_MATRIX_MAX_PARALLEL_TIME = 2000.0


def run_matrix(config: ExperimentConfig) -> ExperimentResult:
    """Run the protocols × scenarios matrix under ``config``.

    Engine selection is always ``"auto"`` within this experiment: scenario
    cells need a scenario-capable engine regardless of the configuration's
    engine preference (the count-space engines assume the complete
    fault-free model), and ``auto`` dispatch already encodes that routing.
    """

    def _run() -> ExperimentResult:
        n = config.sizes_capped(config.slow_protocol_max_n)[-1]
        budget = min(config.max_parallel_time, _MATRIX_MAX_PARALLEL_TIME)
        seeds = spawn_seeds(config.base_seed, config.repetitions)
        result = ExperimentResult(
            experiment="matrix",
            description=(
                "Leader re-election under relaxed model assumptions: each cell "
                f"runs {config.repetitions} seed(s) at n = {n} under a scenario "
                "(interaction topology / churn / crash faults) and passes when "
                "a majority of seeds reach a single alive leader within a "
                f"parallel-time budget of {budget:g}."
            ),
        )
        grid = result.add_table(
            "re-election matrix",
            ["protocol"] + MATRIX_SCENARIOS,
        )
        detail = result.add_table(
            "detail",
            [
                "protocol",
                "scenario",
                "n",
                "runs",
                "converged",
                "parallel time (mean of converged)",
                "events (mean joins/leaves/crashes/drops)",
            ],
        )

        for name, factory in MATRIX_PROTOCOLS:
            grid_row: List[object] = [name]
            for scenario_name in MATRIX_SCENARIOS:
                scenario = get_scenario(scenario_name)
                runs = [
                    run_protocol(
                        factory(n),
                        n,
                        seed=seed,
                        max_parallel_time=budget,
                        convergence=SingleAliveLeader(),
                        engine_cls="auto",
                        scenario=scenario,
                    )
                    for seed in seeds
                ]
                converged = [run for run in runs if run.converged]
                passed = len(converged) * 2 > len(runs)
                grid_row.append(
                    f"{'PASS' if passed else 'fail'} "
                    f"({len(converged)}/{len(runs)})"
                )
                times = summarize([run.parallel_time for run in converged]) if converged else None
                events = [
                    run.metadata.get("scenario_events") or {} for run in runs
                ]
                means = tuple(
                    sum(e.get(k, 0) for e in events) / len(runs)
                    for k in ("joins", "leaves", "crashes", "dropped")
                )
                detail.add_row(
                    name,
                    scenario_name,
                    n,
                    len(runs),
                    len(converged),
                    f"{times.mean:.1f}" if times else "—",
                    "/".join(f"{m:.1f}" for m in means),
                )
            grid.add_row(*grid_row)

        result.metadata.update(
            {
                "n": n,
                "repetitions": config.repetitions,
                "max_parallel_time": budget,
                "scenarios": list(MATRIX_SCENARIOS),
            }
        )
        return result

    return timed(_run)
