"""Experiment ``figure3`` — the slowing-down drag counter (Figure 3).

Figure 3 of the paper illustrates the drag-counter mechanism: an active
leader of drag ``i`` elevates the drag-``i`` inhibitor sub-group, whose
one-way epidemic takes ``≈ 4^i n log n`` interactions, after which the
leader advances to drag ``i+1``.  This experiment runs the full protocol
with a :class:`~repro.core.monitor.DragTickTracker` attached and reports:

* the measured parallel time ``T_ℓ`` between the first appearances of drag
  ``ℓ`` and drag ``ℓ+1`` among leaders, against the predicted geometric
  growth ``T_ℓ ∝ 4^ℓ`` (Lemma 7.2);
* the measured inhibitor sub-group sizes ``D_ℓ`` against the prediction
  ``(n/4)·4^{-ℓ}`` of Lemma 7.1.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.analysis.stats import summarize
from repro.core.monitor import DragTickTracker, inhibitor_drag_census
from repro.core.protocol import GSULeaderElection
from repro.core.theory import predicted_drag_group_sizes
from repro.engine.dispatch import EngineSpec, resolve_engine
from repro.engine.rng import spawn_seeds
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult, convergence_for, timed
from repro.engine.simulation import run_protocol

__all__ = ["run_figure3", "measure_inhibitor_groups"]


def measure_inhibitor_groups(
    n: int, seed: int, *, parallel_time: float = 200.0, engine: EngineSpec = None
) -> Dict[int, int]:
    """Run the protocol long enough for inhibitor preprocessing to settle and
    return the drag census (Lemma 7.1's ``D_ℓ``)."""
    protocol = GSULeaderElection.for_population(n)
    engine = resolve_engine(engine, protocol, n)(protocol, n, rng=seed)
    engine.run_parallel_time(parallel_time)
    return inhibitor_drag_census(engine)


def run_figure3(config: ExperimentConfig) -> ExperimentResult:
    """Run the Figure 3 experiment under ``config``."""

    def _run() -> ExperimentResult:
        result = ExperimentResult(
            experiment="figure3",
            description=(
                "Drag-counter tick intervals T_l (parallel time between the first "
                "appearance of consecutive drag values among leaders) versus the "
                "predicted 4^l growth, and inhibitor drag-group sizes versus "
                "Lemma 7.1."
            ),
        )
        ticks_table = result.add_table(
            "drag tick intervals (Lemma 7.2)",
            [
                "n",
                "drag l",
                "measured T_l (mean parallel time)",
                "T_l / T_0 (measured)",
                "4^l (predicted ratio)",
                "samples",
            ],
        )
        groups_table = result.add_table(
            "inhibitor drag groups (Lemma 7.1)",
            ["n", "drag l", "measured D_l (mean)", "predicted D_l"],
        )

        seeds = spawn_seeds(config.base_seed + 3, len(config.population_sizes) * config.repetitions)
        cursor = 0
        for n in config.population_sizes:
            tick_samples: Dict[int, List[float]] = {}
            group_samples: Dict[int, List[int]] = {}
            psi = None
            for _ in range(config.repetitions):
                seed = seeds[cursor]
                cursor += 1
                protocol = GSULeaderElection.for_population(n)
                psi = protocol.params.psi
                tracker = DragTickTracker()
                run_protocol(
                    protocol,
                    n,
                    seed=seed,
                    max_parallel_time=config.max_parallel_time,
                    convergence=convergence_for(protocol),
                    recorders=[tracker],
                    check_every=max(1, n // 2),
                    engine_cls=config.engine,
                )
                for level, interval in tracker.tick_intervals().items():
                    tick_samples.setdefault(level, []).append(interval)
                for level, count in measure_inhibitor_groups(
                    n,
                    seed + 1,
                    parallel_time=min(200.0, config.max_parallel_time),
                    engine=config.engine,
                ).items():
                    group_samples.setdefault(level, []).append(count)

            baseline = None
            for level in sorted(tick_samples):
                measured = summarize(tick_samples[level])
                if baseline is None and measured.mean > 0:
                    baseline = measured.mean
                ratio = measured.mean / baseline if baseline else float("nan")
                ticks_table.add_row(
                    n,
                    level,
                    f"{measured.mean:.1f}",
                    f"{ratio:.2f}",
                    f"{4.0 ** level:.0f}",
                    measured.count,
                )
            predicted_groups = predicted_drag_group_sizes(n, psi or 2)
            for level in sorted(group_samples):
                measured = summarize(group_samples[level])
                predicted = (
                    predicted_groups[level]
                    if level < len(predicted_groups)
                    else float("nan")
                )
                groups_table.add_row(
                    n, level, f"{measured.mean:.1f}", f"{predicted:.1f}"
                )
        result.metadata.update(
            {
                "population_sizes": list(config.population_sizes),
                "repetitions": config.repetitions,
            }
        )
        return result

    return timed(_run)
