"""Experiment ``figure2`` — the fast-elimination pipeline (Figure 2).

Figure 2 of the paper sketches how the pool of *active* leader candidates
shrinks as the asymmetric coins are applied: ``≈ n/2`` initially, ``≈ n^a``
after the four uses of coin ``Φ``, then repeatedly square-rooted down to
``c·log n`` by the remaining coins.  This experiment runs the full protocol
with a :class:`~repro.core.monitor.FastEliminationTracker` attached, records
the number of active candidates remaining at the last observation of each
round-counter value ``cnt``, and reports it against the idealised reduction
computed from the measured coin biases.

Two claims are checked quantitatively:

* after the whole schedule, the number of active candidates is ``O(log n)``
  (Lemma 6.2) — the table reports the ratio to ``log₂ n``;
* at no point does the number of active candidates drop to zero.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.stats import summarize
from repro.coins.biased import expected_level_counts
from repro.core.monitor import FastEliminationTracker
from repro.core.params import GSUParams
from repro.core.protocol import GSULeaderElection
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult, sweep, timed

__all__ = ["run_figure2", "idealised_survivor_series"]


def idealised_survivor_series(n: int, params: GSUParams) -> Dict[int, float]:
    """The idealised number of active candidates after each coin application.

    Starting from ``n/2`` candidates, each application of the coin scheduled
    at counter value ``cnt`` multiplies the count by that coin's heads
    probability ``q = C_level/n`` (floored at 1), using the idealised
    ``C_level`` from the level-count recursion.
    """
    level_counts = expected_level_counts(n, params.phi, coin_fraction=0.25)
    series: Dict[int, float] = {}
    survivors = n / 2.0
    for cnt in range(params.coin_schedule_length, 0, -1):
        level = params.coin_level_for_cnt(cnt)
        q = level_counts[level] / n
        survivors = max(1.0, survivors * q)
        series[cnt] = survivors
    return series


def run_figure2(config: ExperimentConfig) -> ExperimentResult:
    """Run the Figure 2 experiment under ``config``."""

    def _run() -> ExperimentResult:
        result = ExperimentResult(
            experiment="figure2",
            description=(
                "Active leader candidates remaining after each biased-coin "
                "application of the fast-elimination epoch, versus the idealised "
                "reduction; end-of-epoch counts compared against O(log n)."
            ),
        )
        series_table = result.add_table(
            "survivors per coin application",
            [
                "n",
                "cnt",
                "coin level",
                "measured active (mean)",
                "idealised active",
            ],
        )
        end_table = result.add_table(
            "end of fast elimination (Lemma 6.2)",
            [
                "n",
                "active after schedule (mean)",
                "log2 n",
                "ratio",
                "never zero alive",
            ],
        )

        for n in config.population_sizes:
            cells = sweep(
                lambda size: GSULeaderElection.for_population(size),
                [n],
                repetitions=config.repetitions,
                base_seed=config.base_seed + n,
                max_parallel_time=config.max_parallel_time,
                recorder_factory=lambda: [FastEliminationTracker()],
                check_every=max(1, n // 2),
                engine=config.engine,
            )
            params = GSUParams.from_population_size(n)
            idealised = idealised_survivor_series(n, params)
            per_cnt: Dict[int, List[int]] = {}
            end_counts: List[int] = []
            never_zero = True
            for _, recorders in cells[n]:
                tracker: FastEliminationTracker = recorders[0]
                survivors = tracker.survivors_per_cnt()
                for cnt, active in survivors.items():
                    if 0 < cnt <= params.coin_schedule_length:
                        per_cnt.setdefault(cnt, []).append(active)
                schedule_counts = [
                    active
                    for cnt, active in survivors.items()
                    if 0 < cnt <= params.coin_schedule_length
                ]
                if survivors.get(1) is not None:
                    end_counts.append(survivors[1])
                elif schedule_counts:
                    end_counts.append(schedule_counts[-1])
                else:
                    # Small populations can finish their elimination between
                    # two check points; fall back to the smallest positive
                    # active count observed, which upper-bounds the count at
                    # the end of the schedule.
                    positive = [c for c in tracker.active_counts if c > 0]
                    if positive:
                        end_counts.append(min(positive))
                # The Las Vegas guarantee (Lemma 8.1): once leader candidates
                # exist, the number of *alive* candidates (active or passive)
                # never returns to zero.  Checks before the first candidate is
                # created (the very start of the run) are excluded.
                alive_series = tracker.alive_counts
                first_candidate = next(
                    (index for index, count in enumerate(alive_series) if count > 0),
                    None,
                )
                if first_candidate is not None and any(
                    count == 0 for count in alive_series[first_candidate:]
                ):
                    never_zero = False

            for cnt in sorted(per_cnt, reverse=True):
                measured = summarize(per_cnt[cnt])
                series_table.add_row(
                    n,
                    cnt,
                    params.coin_level_for_cnt(cnt),
                    f"{measured.mean:.1f}",
                    f"{idealised.get(cnt, float('nan')):.1f}",
                )
            if end_counts:
                import math

                end_summary = summarize(end_counts)
                log_n = math.log2(n)
                end_table.add_row(
                    n,
                    f"{end_summary.mean:.1f}",
                    f"{log_n:.1f}",
                    f"{end_summary.mean / log_n:.2f}",
                    "yes" if never_zero else "NO",
                )
        result.metadata.update(
            {
                "population_sizes": list(config.population_sizes),
                "repetitions": config.repetitions,
            }
        )
        return result

    return timed(_run)
