"""Experiment ``table1`` — the paper's Table 1, measured.

Table 1 of the paper lists leader-election protocols by their state and time
complexity.  Four of those regimes are simulable with the protocols in this
library; we measure, for each protocol and population size, the parallel
convergence time and the number of distinct states agents actually used:

* ``slow-leader-election`` — 2 states, ``Θ(n)`` expected time (AAD+04),
* ``lottery-leader-election`` — ``O(log n)`` states, ``Θ(n)`` expected time
  (no clock/broadcast structure),
* ``gs18-leader-election``  — ``O(log log n)``-style states, ``O(log² n)``
  time (the protocol the paper improves upon),
* ``gsu19-leader-election`` — ``O(log log n)`` states,
  ``O(log n · log log n)`` expected time (this paper).

The report contains (a) the per-(protocol, n) measurements, (b) growth-model
fits of the mean time against ``log n``, ``log n log log n``, ``log² n`` and
``n``, and (c) the paper's original asymptotic rows for reference — including
the rows we cannot measure because those protocols are defined only
asymptotically (AG15, AAE+17, BCER17, AAG18, BKKO18, SOI+18).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.analysis.scaling import rank_models
from repro.analysis.stats import summarize
from repro.core.protocol import GSULeaderElection
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult, sweep, timed
from repro.protocols.gs18 import GS18LeaderElection
from repro.protocols.lottery import LotteryLeaderElection
from repro.protocols.slow import SlowLeaderElection

__all__ = ["run_table1", "PAPER_TABLE1_ROWS", "SIMULATED_PROTOCOLS"]

#: The asymptotic rows of the paper's Table 1 (for side-by-side reporting).
PAPER_TABLE1_ROWS = [
    ("AG15", "O(log^3 n)", "O(log^3 n) expected / O(log^4 n) whp"),
    ("AAE+17", "O(log^2 n)", "O(log^5.3 n loglog n) expected / O(log^6.3 n) whp"),
    ("BCER17", "O(log^2 n)", "O(log^2 n) whp"),
    ("AAG18", "O(log n)", "O(log^2 n) expected"),
    ("BKKO18", "O(log n)", "O(log^2 n) whp"),
    ("GS18", "O(loglog n)", "O(log^2 n) whp"),
    ("This work (GSU19)", "O(loglog n)", "O(log n loglog n) expected"),
    ("SOI+18", "O(log n)", "O(log n) expected"),
]

#: Protocols simulated for the measured half of the table, with the factory
#: used to build them and whether they are Θ(n)-time (and therefore capped to
#: ``ExperimentConfig.slow_protocol_max_n``).
SIMULATED_PROTOCOLS: List[tuple] = [
    ("slow-leader-election", lambda n: SlowLeaderElection(), True),
    ("lottery-leader-election", lambda n: LotteryLeaderElection.for_population(n), True),
    ("gs18-leader-election", lambda n: GS18LeaderElection.for_population(n), False),
    ("gsu19-leader-election", lambda n: GSULeaderElection.for_population(n), False),
]


def run_table1(config: ExperimentConfig) -> ExperimentResult:
    """Run the Table 1 experiment under ``config``."""

    def _run() -> ExperimentResult:
        result = ExperimentResult(
            experiment="table1",
            description=(
                "Measured parallel convergence time and observed state usage for "
                "the simulable rows of the paper's Table 1, plus growth-model "
                "fits of time against n."
            ),
        )
        measured = result.add_table(
            "measured",
            [
                "protocol",
                "n",
                "runs",
                "parallel time (mean ± se)",
                "parallel time (median)",
                "states used (mean)",
                "always one leader",
            ],
        )
        fits = result.add_table(
            "growth fits",
            ["protocol", "best model", "constant", "relative RMS", "runner-up"],
        )
        reference = result.add_table(
            "paper reference (asymptotic)",
            ["protocol", "states", "time"],
        )
        for name, states, time_bound in PAPER_TABLE1_ROWS:
            reference.add_row(name, states, time_bound)

        summary_points: Dict[str, List[tuple]] = {}
        for name, factory, is_slow in SIMULATED_PROTOCOLS:
            sizes = (
                config.sizes_capped(config.slow_protocol_max_n)
                if is_slow
                else list(config.population_sizes)
            )
            cells = sweep(
                factory,
                sizes,
                repetitions=config.repetitions,
                base_seed=config.base_seed,
                max_parallel_time=config.max_parallel_time,
                engine=config.engine,
                workers=config.workers,
                scenario=config.scenario,
            )
            for n, outcomes in cells.items():
                times = [run.parallel_time for run, _ in outcomes]
                states = [run.states_used for run, _ in outcomes]
                leaders_ok = all(
                    run.converged and run.leader_count == 1 for run, _ in outcomes
                )
                time_summary = summarize(times)
                state_summary = summarize(states)
                measured.add_row(
                    name,
                    n,
                    len(outcomes),
                    time_summary.format(1),
                    f"{time_summary.median:.1f}",
                    f"{state_summary.mean:.1f}",
                    "yes" if leaders_ok else "NO",
                )
                summary_points.setdefault(name, []).append((n, time_summary.mean))

        for name, points in summary_points.items():
            if len(points) < 2:
                continue
            ns = [n for n, _ in points]
            times = [t for _, t in points]
            ranking = rank_models(ns, times, ("log", "log_loglog", "log2", "linear"))
            best, runner_up = ranking[0], ranking[1]
            fits.add_row(
                name,
                best.model.description,
                f"{best.constant:.2f}",
                f"{best.relative_rms:.1%}",
                f"{runner_up.model.description} ({runner_up.relative_rms:.1%})",
            )

        result.metadata.update(
            {
                "population_sizes": list(config.population_sizes),
                "repetitions": config.repetitions,
                "max_parallel_time": config.max_parallel_time,
            }
        )
        return result

    return timed(_run)
