"""Lemma-level validation experiments (``lemma41``, ``lemma53``, ``lemma71``,
``lemma73``) and the phase-clock round-length experiment (``clock``).

The paper's evaluation is analytical; beyond the headline theorem its
quantitative content lives in the lemmas.  Each experiment here measures the
quantity a lemma bounds and reports it against the bound's shape:

* **Lemma 4.1** — the number of agents never given a role (deactivated at the
  end of the first round) is ``O(n / log n)``.
* **Lemma 5.3** — the junta size lies in ``[n^0.45, n^0.77]``.
* **Lemma 7.1** — the inhibitor drag groups have size ``≈ (n/4)·4^{-ℓ}``.
* **Lemma 7.3** — reducing ``c·log n`` active candidates to one by repeated
  almost-fair coin flips takes ``O(log log n)`` rounds in expectation; this is
  checked both on the abstract round process (direct Monte Carlo) and via the
  number of clock rounds the full protocol spends in its final epoch.
* **Theorem 3.2** (``clock``) — the junta-driven phase clock's rounds take
  ``Θ(log n)`` parallel time.
"""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np

from repro.analysis.stats import summarize
from repro.clocks.phase_clock import JuntaPhaseClockProtocol
from repro.clocks.round_tracker import PhaseStatistics, RoundLengthEstimator
from repro.coins.analysis import coin_level_histogram, junta_bounds
from repro.core.monitor import (
    UNINITIALISED_VIEW,
    inhibitor_drag_census,
    role_census,
)
from repro.core.protocol import GSULeaderElection
from repro.core.theory import predicted_drag_group_sizes
from repro.engine.base import BaseEngine
from repro.engine.convergence import OutputCountCondition
from repro.engine.dispatch import EngineSpec, resolve_engine
from repro.engine.rng import make_rng, spawn_seeds
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult, timed
from repro.types import Role

__all__ = [
    "run_lemma41",
    "run_lemma53",
    "run_lemma71",
    "run_lemma73",
    "run_clock",
    "simulate_final_elimination_rounds",
]


def _settled_engine(
    n: int, seed: int, max_parallel_time: float, engine_spec: EngineSpec = None
) -> BaseEngine:
    """Run the protocol until every agent has a fixed role (end of the first
    round for the stragglers) and return the engine.

    The settling condition is the protocol's own certificate
    (:meth:`GSULeaderElection.no_uninitialised_agents` — one vector
    reduction over the compiled uninitialised-role view), so each check
    costs O(occupied frontier) even at the ``n = 10^7``–``10^8`` scale of
    the count-batch engine.
    """
    protocol = GSULeaderElection.for_population(n)
    engine = resolve_engine(engine_spec, protocol, n)(protocol, n, rng=seed)
    # Warm the settling view against the engine's table so the whole sweep
    # pays state evaluation once per protocol instance, not per check.
    engine.table.view_values(UNINITIALISED_VIEW)
    engine.run_until(
        protocol.no_uninitialised_agents,
        max_interactions=int(max_parallel_time * n),
    )
    return engine


# ----------------------------------------------------------------------
# Lemma 4.1
# ----------------------------------------------------------------------
def run_lemma41(config: ExperimentConfig) -> ExperimentResult:
    """Fraction of agents that never received a working role."""

    def _run() -> ExperimentResult:
        result = ExperimentResult(
            experiment="lemma41",
            description=(
                "Agents deactivated at the end of the first round (never given a "
                "role) as a fraction of n, versus the O(1/log n) bound of "
                "Lemma 4.1."
            ),
        )
        table = result.add_table(
            "uninitialised agents",
            ["n", "deactivated (mean)", "fraction of n", "1/log2 n", "fraction · log2 n"],
        )
        seeds = spawn_seeds(config.base_seed + 41, len(config.population_sizes) * config.repetitions)
        cursor = 0
        for n in config.population_sizes:
            counts: List[int] = []
            for _ in range(config.repetitions):
                engine = _settled_engine(
                    n, seeds[cursor], config.max_parallel_time, config.engine
                )
                cursor += 1
                counts.append(role_census(engine).get(Role.DEACTIVATED, 0))
            summary = summarize(counts)
            fraction = summary.mean / n
            table.add_row(
                n,
                f"{summary.mean:.1f}",
                f"{fraction:.4f}",
                f"{1.0 / math.log2(n):.4f}",
                f"{fraction * math.log2(n):.2f}",
            )
        return result

    return timed(_run)


# ----------------------------------------------------------------------
# Lemma 5.3
# ----------------------------------------------------------------------
def run_lemma53(config: ExperimentConfig) -> ExperimentResult:
    """Junta size versus the ``[n^0.45, n^0.77]`` window."""

    def _run() -> ExperimentResult:
        result = ExperimentResult(
            experiment="lemma53",
            description="Junta size (coins at level Φ) versus the window of Lemma 5.3.",
        )
        table = result.add_table(
            "junta size",
            ["n", "junta (mean)", "junta (min)", "junta (max)", "n^0.45", "n^0.77", "all inside"],
        )
        seeds = spawn_seeds(config.base_seed + 53, len(config.population_sizes) * config.repetitions)
        cursor = 0
        for n in config.population_sizes:
            sizes: List[int] = []
            for _ in range(config.repetitions):
                engine = _settled_engine(
                    n, seeds[cursor], config.max_parallel_time, config.engine
                )
                cursor += 1
                observation = coin_level_histogram(
                    engine, max_level=GSULeaderElection.for_population(n).params.phi
                )
                sizes.append(observation.junta_size)
            low, high = junta_bounds(n)
            summary = summarize(sizes)
            inside = all(low <= size <= high for size in sizes)
            table.add_row(
                n,
                f"{summary.mean:.1f}",
                f"{summary.minimum:.0f}",
                f"{summary.maximum:.0f}",
                f"{low:.1f}",
                f"{high:.1f}",
                "yes" if inside else "NO",
            )
        return result

    return timed(_run)


# ----------------------------------------------------------------------
# Lemma 7.1
# ----------------------------------------------------------------------
def run_lemma71(config: ExperimentConfig) -> ExperimentResult:
    """Inhibitor drag-group sizes versus ``(n/4)·4^{-ℓ}``."""

    def _run() -> ExperimentResult:
        result = ExperimentResult(
            experiment="lemma71",
            description=(
                "Number of inhibitors whose drag counter stopped at each value l, "
                "versus the geometric prediction of Lemma 7.1."
            ),
        )
        table = result.add_table(
            "drag groups",
            ["n", "drag l", "measured D_l (mean)", "predicted D_l", "measured/predicted"],
        )
        seeds = spawn_seeds(config.base_seed + 71, len(config.population_sizes) * config.repetitions)
        cursor = 0
        for n in config.population_sizes:
            protocol = GSULeaderElection.for_population(n)
            per_level: Dict[int, List[int]] = {}
            for _ in range(config.repetitions):
                engine = _settled_engine(
                    n, seeds[cursor], config.max_parallel_time, config.engine
                )
                cursor += 1
                # Let inhibitor preprocessing finish (it needs a couple of
                # late half-rounds after the clock starts).
                engine.run_parallel_time(4 * math.log2(n))
                for level, count in inhibitor_drag_census(engine).items():
                    per_level.setdefault(level, []).append(count)
            predicted = predicted_drag_group_sizes(n, protocol.params.psi)
            for level in sorted(per_level):
                measured = summarize(per_level[level])
                prediction = predicted[level] if level < len(predicted) else float("nan")
                ratio = measured.mean / prediction if prediction else float("nan")
                table.add_row(
                    n, level, f"{measured.mean:.1f}", f"{prediction:.1f}", f"{ratio:.2f}"
                )
        return result

    return timed(_run)


# ----------------------------------------------------------------------
# Lemma 7.3
# ----------------------------------------------------------------------
def simulate_final_elimination_rounds(
    candidates: int, heads_probability: float, rng, max_rounds: int = 10_000
) -> int:
    """Monte-Carlo simulation of the abstract final-elimination round process.

    Each round every remaining candidate flips heads with probability
    ``heads_probability``; if at least one heads occurs only the heads
    flippers survive, otherwise the round is void.  Returns the number of
    rounds until one candidate remains.
    """
    remaining = int(candidates)
    rounds = 0
    while remaining > 1 and rounds < max_rounds:
        heads = int(rng.binomial(remaining, heads_probability))
        if heads >= 1:
            remaining = heads
        rounds += 1
    return rounds


def run_lemma73(config: ExperimentConfig) -> ExperimentResult:
    """Expected number of final-elimination rounds from ``c log n`` candidates."""

    def _run() -> ExperimentResult:
        result = ExperimentResult(
            experiment="lemma73",
            description=(
                "Rounds needed to reduce c·log n candidates to a single one by "
                "repeated almost-fair coin flips (abstract Monte Carlo of the "
                "process analysed in Lemma 7.3), versus the O(log log n) bound."
            ),
        )
        table = result.add_table(
            "rounds to a single candidate",
            [
                "n",
                "initial candidates (c log2 n, c=2)",
                "rounds (mean)",
                "rounds (p95)",
                "log_{6/5}(c log n)",
                "loglog2 n",
            ],
        )
        rng = make_rng(config.base_seed + 73)
        trials = max(200, config.repetitions * 100)
        heads_probability = 0.25  # the level-0 coin's bias (C_0/n ≈ 1/4)
        for n in config.population_sizes:
            log_n = math.log2(n)
            initial = max(2, int(round(2 * log_n)))
            rounds = [
                simulate_final_elimination_rounds(initial, heads_probability, rng)
                for _ in range(trials)
            ]
            summary = summarize(rounds)
            p95 = float(np.quantile(np.array(rounds, dtype=float), 0.95))
            table.add_row(
                n,
                initial,
                f"{summary.mean:.2f}",
                f"{p95:.1f}",
                f"{math.log(initial) / math.log(6.0 / 5.0):.1f}",
                f"{math.log2(max(2.0, log_n)):.2f}",
            )
        result.metadata["trials_per_size"] = trials
        return result

    return timed(_run)


# ----------------------------------------------------------------------
# Theorem 3.2 (phase clock)
# ----------------------------------------------------------------------
def run_clock(config: ExperimentConfig) -> ExperimentResult:
    """Phase-clock round lengths versus ``log n``."""

    def _run() -> ExperimentResult:
        result = ExperimentResult(
            experiment="clock",
            description=(
                "Parallel-time length of junta-driven phase-clock rounds "
                "(Theorem 3.2): rounds should take Θ(log n) parallel time."
            ),
        )
        table = result.add_table(
            "round length",
            ["n", "gamma", "junta size", "rounds observed", "round length (mean)", "round length / log2 n"],
        )
        seeds = spawn_seeds(config.base_seed + 32, len(config.population_sizes))
        horizon = 60.0  # parallel time per run; enough for several rounds
        for n, seed in zip(config.population_sizes, seeds):
            protocol = JuntaPhaseClockProtocol.for_population(n, gamma=24)
            engine = resolve_engine(config.engine, protocol, n)(protocol, n, rng=seed)
            estimator = RoundLengthEstimator(gamma=protocol.gamma)
            checks = int(horizon * math.log2(n))
            for _ in range(checks):
                engine.run(max(1, n // 4))
                statistics = PhaseStatistics.from_engine(
                    engine, protocol.phase_of, protocol.gamma
                )
                estimator.observe(statistics)
            lengths = estimator.round_lengths()
            if lengths:
                summary = summarize(lengths)
                table.add_row(
                    n,
                    protocol.gamma,
                    protocol.junta_size,
                    len(lengths),
                    f"{summary.mean:.1f}",
                    f"{summary.mean / math.log2(n):.2f}",
                )
            else:
                table.add_row(n, protocol.gamma, protocol.junta_size, 0, "n/a", "n/a")
        return result

    return timed(_run)
