"""Experiment configuration.

A single :class:`ExperimentConfig` object parameterises every experiment:
which population sizes to sweep, how many independent seeds per size, the
per-run parallel-time budget and the top-level seed.  Three presets cover
the common uses:

* :meth:`ExperimentConfig.smoke` — minutes-scale sanity run used by the test
  suite and the pytest-benchmark targets,
* :meth:`ExperimentConfig.default` — the configuration used to produce the
  numbers recorded in ``EXPERIMENTS.md``,
* :meth:`ExperimentConfig.large` — the heavier sweep for readers with more
  patience (bigger ``n``, more seeds); invoked through the CLI,
* :meth:`ExperimentConfig.headline` — the ``n = 10^7``/``10^8`` GSU19 tier
  on ``engine="auto"``: fast-batch C kernel at ``10^7``, the O(k)-memory
  configuration-space engine at ``10^8`` (hours-to-days of wall clock; one
  seed per size),
* :meth:`ExperimentConfig.extreme` — count-space GSU19 at ``n = 10^12``
  through the compiled count kernel (O(k) memory, under 1 GiB peak).

The configuration is a frozen dataclass on purpose: the experiment store
(:mod:`repro.experiments.store`) hashes ``dataclasses.asdict(config)``
together with the experiment identifier into the record key for CLI-level
``--store``/``--resume``, so every field change — sizes, repetitions,
budget, seed, engine — keys a distinct stored record.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence

from repro.engine.dispatch import ENGINE_NAMES
from repro.errors import ConfigurationError

__all__ = ["ExperimentConfig"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Sweep parameters shared by all experiments."""

    #: Population sizes to sweep (each experiment may subset or cap them).
    population_sizes: tuple = (256, 512, 1024, 2048)
    #: Independent seeds per population size.
    repetitions: int = 5
    #: Top-level seed from which per-run seeds are spawned.
    base_seed: int = 20190622
    #: Per-run parallel-time budget (interactions / n).
    max_parallel_time: float = 20000.0
    #: Cap applied to population sizes for Θ(n)-time protocols so that the
    #: slow baselines do not dominate the harness's wall-clock time.
    slow_protocol_max_n: int = 1024
    #: Engine specification forwarded to every run: a registry name or
    #: ``"auto"`` (see the engine selection guide in :mod:`repro.engine`).
    #: The default stays the sequential reference engine so recorded numbers
    #: remain reproducible run-over-run.
    engine: str = "sequential"
    #: Worker processes for the sweep scheduler (``0``/``1`` = serial).
    #: Purely an execution knob: the scheduler is bit-identical at every
    #: worker count, so this field is excluded from experiment store keys
    #: (see :func:`repro.experiments.registry.experiment_key`).
    workers: int = 0
    #: Optional :class:`~repro.scenarios.Scenario` applied to every run:
    #: interaction topology plus churn and fault models.  ``None`` (the
    #: default) is the classical complete fault-free model and keys exactly
    #: as configurations minted before this field existed — the experiment
    #: store key only includes the scenario when one is set (see
    #: :func:`repro.experiments.registry.experiment_key`).
    scenario: Optional[object] = None

    def __post_init__(self) -> None:
        if not self.population_sizes:
            raise ConfigurationError("population_sizes must not be empty")
        if any(n < 8 for n in self.population_sizes):
            raise ConfigurationError(
                f"population sizes must be >= 8, got {self.population_sizes}"
            )
        if self.repetitions < 1:
            raise ConfigurationError(
                f"repetitions must be >= 1, got {self.repetitions}"
            )
        if self.max_parallel_time <= 0:
            raise ConfigurationError(
                f"max_parallel_time must be positive, got {self.max_parallel_time}"
            )
        if self.engine not in ENGINE_NAMES:
            raise ConfigurationError(
                f"engine must be one of {ENGINE_NAMES}, got {self.engine!r}"
            )
        if self.workers < 0:
            raise ConfigurationError(
                f"workers must be >= 0, got {self.workers}"
            )
        if self.scenario is not None:
            from repro.scenarios import Scenario

            if not isinstance(self.scenario, Scenario):
                raise ConfigurationError(
                    f"scenario must be a repro.scenarios.Scenario or None, "
                    f"got {type(self.scenario).__name__}"
                )

    # ------------------------------------------------------------------
    @classmethod
    def smoke(cls) -> "ExperimentConfig":
        """Tiny configuration for tests and benchmark smoke runs."""
        return cls(
            population_sizes=(128, 256),
            repetitions=2,
            max_parallel_time=6000.0,
            slow_protocol_max_n=256,
        )

    @classmethod
    def default(cls) -> "ExperimentConfig":
        """The configuration behind the numbers in ``EXPERIMENTS.md``."""
        return cls(
            population_sizes=(256, 512, 1024, 2048, 4096),
            repetitions=5,
            max_parallel_time=20000.0,
            slow_protocol_max_n=1024,
        )

    @classmethod
    def large(cls) -> "ExperimentConfig":
        """Heavier sweep (longer wall-clock; used via the CLI)."""
        return cls(
            population_sizes=(1024, 2048, 4096, 8192, 16384),
            repetitions=10,
            max_parallel_time=40000.0,
            slow_protocol_max_n=2048,
        )

    @classmethod
    def headline(cls) -> "ExperimentConfig":
        """The count-space scenario tier: GSU19 at ``n = 10^7`` and ``10^8``.

        Requires ``engine="auto"`` semantics: the dispatcher picks the
        fast-batch C kernel at ``10^7`` and the O(k)-memory
        ``CountBatchEngine`` at ``10^8`` (where per-agent engines would need
        gigabytes and a minutes-scale construction loop; GSU19's
        reachable-state closure is computed once, ~45 s, and cached).  The
        Θ(n)-time baselines are capped hard — simulating them at this scale
        would measure nothing but wall clock.  Expect hours per seed at
        ``10^7`` and a day-scale run at ``10^8``; repetitions default to a
        single seed for that reason.
        """
        return cls(
            population_sizes=(10**7, 10**8),
            repetitions=1,
            max_parallel_time=4000.0,
            slow_protocol_max_n=4096,
            engine="auto",
        )

    @classmethod
    def extreme(cls) -> "ExperimentConfig":
        """Count-space GSU19 at ``n = 10^12`` through the compiled kernel.

        The trillion-agent tier: the dispatcher forces the O(k)-memory
        ``CountBatchEngine``, whose compiled count kernel
        (:mod:`repro.engine._count_kernel`) executes whole collision-free
        batches — expected length ``~0.886 sqrt(n) ~ 886k`` interactions —
        per C call.  Peak memory stays under 1 GiB (the survival curve is
        capped at ``2^23`` entries and the packed LUT at the closure size;
        see ``count_batch.MAX_EXACT_N`` for the 2^53 exactness bound).
        The parallel-time budget is deliberately small: one unit is
        ``10^12`` interactions (~an hour at kernel throughput), and the
        paper's phenomena at this scale are per-parallel-time-unit
        trajectories, not long-horizon sweeps.  The weekly CI smoke runs
        this preset with ``--sizes``/``--budget`` overrides at reduced
        scale; without the C kernel the Python fallback path is exact but
        ~50x slower — budget accordingly.
        """
        return cls(
            population_sizes=(10**12,),
            repetitions=1,
            max_parallel_time=25.0,
            slow_protocol_max_n=4096,
            engine="auto",
        )

    # ------------------------------------------------------------------
    def sizes_capped(self, maximum: int) -> List[int]:
        """Population sizes not exceeding ``maximum`` (at least the smallest)."""
        sizes = [n for n in self.population_sizes if n <= maximum]
        if not sizes:
            sizes = [min(self.population_sizes)]
        return sizes

    def with_sizes(self, sizes: Sequence[int]) -> "ExperimentConfig":
        """Copy of the configuration with different population sizes."""
        return replace(self, population_sizes=tuple(int(n) for n in sizes))

    def with_repetitions(self, repetitions: int) -> "ExperimentConfig":
        """Copy of the configuration with a different repetition count."""
        return replace(self, repetitions=int(repetitions))

    def with_engine(self, engine: str) -> "ExperimentConfig":
        """Copy of the configuration with a different engine specification."""
        return replace(self, engine=str(engine))

    def with_workers(self, workers: int) -> "ExperimentConfig":
        """Copy of the configuration with a different worker-process count."""
        return replace(self, workers=int(workers))

    def with_scenario(self, scenario) -> "ExperimentConfig":
        """Copy of the configuration with a different scenario (or ``None``)."""
        return replace(self, scenario=scenario)
