"""Experiment ``figure1`` — coin sub-populations and their biases (Figure 1).

Figure 1 of the paper sketches the idealised sizes of the coin level
populations ``C_0 ≈ n/4, C_1 ≈ n/16, …, C_Φ ≈ n^{1-a}`` and the heads
probabilities of the asymmetric coins they implement.  This experiment runs
the full protocol just past its coin-preprocessing phase, censuses the coin
levels, and compares:

* the measured ``C_ℓ`` (coins at level ``≥ ℓ``) against the recursion
  ``C_{ℓ+1} = C_ℓ²/n`` of Lemmas 5.1–5.2,
* the measured junta size ``C_Φ`` against the ``[n^0.45, n^0.77]`` window of
  Lemma 5.3,
* the measured heads probability of each coin level (``C_ℓ/n``) against the
  idealised value.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.stats import summarize
from repro.coins.analysis import coin_level_histogram, junta_bounds
from repro.core.protocol import GSULeaderElection
from repro.core.theory import predicted_level_counts
from repro.engine.convergence import AllAgentsSatisfy
from repro.engine.dispatch import EngineSpec, resolve_engine
from repro.engine.rng import spawn_seeds
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult, timed
from repro.types import CoinMode, Role

__all__ = ["run_figure1", "coin_census_after_preprocessing"]


def _preprocessing_finished(state) -> bool:
    """All agents have a role and no coin is still advancing its level."""
    if state.role in (Role.ZERO, Role.X):
        return False
    if state.role == Role.COIN and state.coin_mode == CoinMode.ADVANCING:
        return False
    return True


def coin_census_after_preprocessing(
    n: int, seed: int, *, max_parallel_time: float, engine: EngineSpec = None
):
    """Run the protocol until coin preprocessing has settled; return the census.

    "Settled" means every agent has received its role (or deactivated) and no
    coin can change its level any more, so the census is the protocol's final
    coin stratification.
    """
    protocol = GSULeaderElection.for_population(n)
    engine = resolve_engine(engine, protocol, n)(protocol, n, rng=seed)
    predicate = AllAgentsSatisfy(
        _preprocessing_finished, "roles fixed and coin levels final"
    )
    engine.run_until(predicate, max_interactions=int(max_parallel_time * n))
    observation = coin_level_histogram(engine, max_level=protocol.params.phi)
    return protocol.params, observation


def run_figure1(config: ExperimentConfig) -> ExperimentResult:
    """Run the Figure 1 experiment under ``config``."""

    def _run() -> ExperimentResult:
        result = ExperimentResult(
            experiment="figure1",
            description=(
                "Coin level populations C_l after preprocessing, their implied "
                "heads probabilities, and the junta size versus the window of "
                "Lemma 5.3."
            ),
        )
        levels_table = result.add_table(
            "coin levels",
            [
                "n",
                "level",
                "measured C_l (mean)",
                "idealised C_l",
                "measured heads prob",
                "idealised heads prob",
            ],
        )
        junta_table = result.add_table(
            "junta size (Lemma 5.3)",
            ["n", "junta size (mean)", "window low n^0.45", "window high n^0.77", "inside window"],
        )

        seeds = spawn_seeds(config.base_seed, len(config.population_sizes) * config.repetitions)
        cursor = 0
        for n in config.population_sizes:
            per_level: Dict[int, List[int]] = {}
            junta_sizes: List[int] = []
            phi = None
            for _ in range(config.repetitions):
                params, observation = coin_census_after_preprocessing(
                    n,
                    seeds[cursor],
                    max_parallel_time=config.max_parallel_time,
                    engine=config.engine,
                )
                cursor += 1
                phi = params.phi
                for level, count in enumerate(observation.at_least):
                    per_level.setdefault(level, []).append(count)
                junta_sizes.append(observation.junta_size)
            idealised = predicted_level_counts(n, phi)
            for level in sorted(per_level):
                measured = summarize(per_level[level])
                ideal = idealised[level] if level < len(idealised) else float("nan")
                levels_table.add_row(
                    n,
                    level,
                    f"{measured.mean:.1f}",
                    f"{ideal:.1f}",
                    f"{measured.mean / n:.4f}",
                    f"{ideal / n:.4f}",
                )
            low, high = junta_bounds(n)
            junta_summary = summarize(junta_sizes)
            junta_table.add_row(
                n,
                f"{junta_summary.mean:.1f}",
                f"{low:.1f}",
                f"{high:.1f}",
                "yes" if low <= junta_summary.mean <= high else "NO",
            )
        result.metadata.update(
            {
                "population_sizes": list(config.population_sizes),
                "repetitions": config.repetitions,
            }
        )
        return result

    return timed(_run)
