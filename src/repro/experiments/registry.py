"""Registry mapping experiment identifiers to their runners.

The CLI, the benchmarks and the documentation all refer to experiments by
the identifiers in DESIGN.md (``table1``, ``figure1`` …); this module is the
single source of truth for that mapping.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.experiments.figure1 import run_figure1
from repro.experiments.figure2 import run_figure2
from repro.experiments.figure3 import run_figure3
from repro.experiments.lemmas import (
    run_clock,
    run_lemma41,
    run_lemma53,
    run_lemma71,
    run_lemma73,
)
from repro.experiments.runner import ExperimentResult
from repro.experiments.table1 import run_table1

__all__ = ["available_experiments", "get_experiment", "run_experiment"]

ExperimentRunner = Callable[[ExperimentConfig], ExperimentResult]

_REGISTRY: Dict[str, ExperimentRunner] = {
    "table1": run_table1,
    "figure1": run_figure1,
    "figure2": run_figure2,
    "figure3": run_figure3,
    "lemma41": run_lemma41,
    "lemma53": run_lemma53,
    "lemma71": run_lemma71,
    "lemma73": run_lemma73,
    "clock": run_clock,
}


def available_experiments() -> List[str]:
    """Identifiers of all registered experiments."""
    return sorted(_REGISTRY)


def get_experiment(name: str) -> ExperimentRunner:
    """Look up an experiment runner by identifier."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {name!r}; available: {available_experiments()}"
        ) from None


def run_experiment(name: str, config: ExperimentConfig) -> ExperimentResult:
    """Run one experiment by identifier."""
    return get_experiment(name)(config)
