"""Registry mapping experiment identifiers to their runners.

The CLI, the benchmarks and the documentation all refer to experiments by
the identifiers in DESIGN.md (``table1``, ``figure1`` …); this module is the
single source of truth for that mapping.

:func:`run_experiment` optionally consults the on-disk experiment store
(:mod:`repro.experiments.store`): with ``store=`` every completed
experiment is persisted under a content hash of ``(experiment name,
configuration)``, and with ``resume=True`` a rerun loads the stored result
instead of recomputing it — the CLI surfaces this as ``--store DIR``
(+ ``--resume``), which makes ``run-all`` restartable after a crash.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Callable, Dict, List, Union

from repro.errors import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.experiments.figure1 import run_figure1
from repro.experiments.figure2 import run_figure2
from repro.experiments.figure3 import run_figure3
from repro.experiments.lemmas import (
    run_clock,
    run_lemma41,
    run_lemma53,
    run_lemma71,
    run_lemma73,
)
from repro.experiments.matrix import run_matrix
from repro.experiments.runner import ExperimentResult
from repro.experiments.table1 import run_table1

__all__ = [
    "available_experiments",
    "experiment_key",
    "get_experiment",
    "run_experiment",
]

ExperimentRunner = Callable[[ExperimentConfig], ExperimentResult]

_REGISTRY: Dict[str, ExperimentRunner] = {
    "table1": run_table1,
    "figure1": run_figure1,
    "figure2": run_figure2,
    "figure3": run_figure3,
    "lemma41": run_lemma41,
    "lemma53": run_lemma53,
    "lemma71": run_lemma71,
    "lemma73": run_lemma73,
    "clock": run_clock,
    "matrix": run_matrix,
}


def available_experiments() -> List[str]:
    """Identifiers of all registered experiments."""
    return sorted(_REGISTRY)


def get_experiment(name: str) -> ExperimentRunner:
    """Look up an experiment runner by identifier."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {name!r}; available: {available_experiments()}"
        ) from None


def _config_fields(config: ExperimentConfig) -> Dict[str, object]:
    """JSON-safe, key-stable field dict of a configuration.

    ``dataclasses.asdict`` would type-erase the scenario's nested frozen
    dataclasses (the topology subclasses carry their identity in their
    class, not in fields), so the scenario is replaced by its
    :meth:`~repro.scenarios.Scenario.describe` dict — and dropped entirely
    when ``None``, which keeps every key minted before the field existed
    valid.
    """
    fields = dataclasses.asdict(config)
    fields.pop("scenario", None)
    if config.scenario is not None:
        fields["scenario"] = config.scenario.describe()
    return fields


def experiment_key(name: str, config: ExperimentConfig) -> str:
    """Content key of one ``(experiment, configuration)`` combination.

    Hashes the experiment identifier together with every *result-affecting*
    field of the configuration, so changing any sweep knob — sizes,
    repetitions, budget, seed, engine, scenario — keys a different record.
    The ``workers`` field is deliberately excluded: the sweep scheduler is
    bit-identical at every worker count, so a result computed serially is
    the result a 8-worker rerun would recompute — excluding the knob lets
    the rerun reuse it (and keeps keys minted before the field existed
    valid).  A ``None`` scenario is likewise excluded (see
    :func:`_config_fields`).
    """
    from repro.experiments.store import content_key

    fields = _config_fields(config)
    fields.pop("workers", None)
    return content_key(
        {
            "kind": "experiment",
            "experiment": name,
            "config": fields,
        }
    )


def run_experiment(
    name: str,
    config: ExperimentConfig,
    *,
    store: Union["ExperimentStore", str, Path, None] = None,  # noqa: F821
    resume: bool = False,
) -> ExperimentResult:
    """Run one experiment by identifier.

    Parameters
    ----------
    name:
        Experiment identifier (see :func:`available_experiments`).
    config:
        Sweep configuration.
    store:
        Optional on-disk experiment store (directory path or
        :class:`~repro.experiments.store.ExperimentStore`).  The completed
        result is persisted under :func:`experiment_key`.
    resume:
        With a store, return the stored result when one exists for this
        exact ``(name, config)`` instead of re-running; loaded results are
        marked with ``metadata["loaded_from_store"] = True``.
    """
    runner = get_experiment(name)
    if store is None:
        return runner(config)
    from repro.experiments.store import ExperimentStore

    store = ExperimentStore.ensure(store)
    key = experiment_key(name, config)
    if resume:
        cached = store.load_experiment(key)
        if cached is not None:
            cached.metadata["loaded_from_store"] = True
            return cached
    result = runner(config)
    store.save_experiment(
        key,
        result,
        inputs={"experiment": name, "config": _config_fields(config)},
    )
    return result
