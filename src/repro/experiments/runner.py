"""Shared experiment plumbing: run loops, result containers, reporting.

An experiment produces an :class:`ExperimentResult`: a set of named tables
(each a header plus rows of plain values) together with free-form metadata.
Results render to text (CLI), markdown (``EXPERIMENTS.md``) and CSV/JSON
(:mod:`repro.experiments.io`).
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.tables import format_markdown_table, format_text_table
from repro.engine.convergence import ConvergencePredicate
from repro.engine.dispatch import EngineSpec
from repro.engine.protocol import PopulationProtocol
from repro.engine.recorder import Recorder
from repro.engine.rng import spawn_seeds
from repro.engine.simulation import RunResult, run_protocol
from repro.errors import ExperimentError

__all__ = [
    "ExperimentTable",
    "ExperimentResult",
    "convergence_for",
    "run_cell",
    "sweep",
]


@dataclass
class ExperimentTable:
    """One table of an experiment report."""

    name: str
    headers: List[str]
    rows: List[List[object]] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        """Append a row (must match the header width)."""
        if len(cells) != len(self.headers):
            raise ExperimentError(
                f"table {self.name!r}: row has {len(cells)} cells, expected "
                f"{len(self.headers)}"
            )
        self.rows.append(list(cells))

    def to_text(self) -> str:
        return f"== {self.name} ==\n" + format_text_table(self.headers, self.rows)

    def to_markdown(self) -> str:
        return f"### {self.name}\n\n" + format_markdown_table(self.headers, self.rows)


@dataclass
class ExperimentResult:
    """Full report of one experiment run."""

    experiment: str
    description: str
    tables: List[ExperimentTable] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)
    wall_clock_seconds: float = 0.0

    def table(self, name: str) -> ExperimentTable:
        """Look up a table by name."""
        for table in self.tables:
            if table.name == name:
                return table
        raise ExperimentError(
            f"experiment {self.experiment!r} has no table named {name!r}; "
            f"available: {[t.name for t in self.tables]}"
        )

    def add_table(self, name: str, headers: Sequence[str]) -> ExperimentTable:
        """Create, register and return a new table."""
        table = ExperimentTable(name=name, headers=list(headers))
        self.tables.append(table)
        return table

    def to_text(self) -> str:
        parts = [f"# Experiment: {self.experiment}", self.description, ""]
        for table in self.tables:
            parts.append(table.to_text())
            parts.append("")
        if self.metadata:
            parts.append("metadata: " + ", ".join(f"{k}={v}" for k, v in sorted(self.metadata.items())))
        parts.append(f"(wall clock: {self.wall_clock_seconds:.1f}s)")
        return "\n".join(parts)

    def to_markdown(self) -> str:
        parts = [f"## {self.experiment}", "", self.description, ""]
        for table in self.tables:
            parts.append(table.to_markdown())
            parts.append("")
        return "\n".join(parts)


# ----------------------------------------------------------------------
# Run helpers
# ----------------------------------------------------------------------
def convergence_for(protocol: PopulationProtocol) -> Optional[ConvergencePredicate]:
    """The protocol-specific convergence predicate, when the protocol
    provides one (``protocol.convergence()``); ``None`` otherwise, which lets
    :func:`repro.engine.simulation.run_protocol` fall back to the plain
    single-leader predicate."""
    factory = getattr(protocol, "convergence", None)
    if callable(factory):
        return factory()
    return None


def run_cell(
    protocol_factory: Callable[[int], PopulationProtocol],
    n: int,
    seeds: Sequence[int],
    *,
    max_parallel_time: float,
    recorder_factory: Optional[Callable[[], Sequence[Recorder]]] = None,
    check_every: Optional[int] = None,
    engine: EngineSpec = None,
    store=None,
    workers: int = 0,
    scenario=None,
) -> List[tuple]:
    """Run one experiment cell (fixed protocol and ``n``, several seeds).

    ``engine`` is an engine specification (name, ``"auto"`` or class);
    ``None`` keeps the sequential default.

    ``store`` (a directory path or
    :class:`~repro.experiments.store.ExperimentStore`) makes the cell
    resumable: completed per-seed runs are loaded from disk instead of
    re-executed.  The store only applies to *recorder-free* cells —
    recorder time series are in-memory observations of a live engine and
    are not persisted, so cells with a ``recorder_factory`` always run.

    Recorder-free cells go through the sweep scheduler
    (:func:`repro.engine.parallel.run_cells`): seeds whose resolved engine
    is replica-capable advance together as one replica-vectorised
    mega-cell (bit-identical per seed), ``workers > 1`` drains missing
    seeds through a process pool, and every completed seed is persisted
    as it finishes.  Cells with recorders keep the in-process serial loop
    — recorders observe a live engine and cannot cross a process
    boundary.

    ``scenario`` (a :class:`~repro.scenarios.Scenario`) runs every seed
    under a non-default interaction model.  Scenario cells use the serial
    in-process loop: the replica-vectorised and multi-process schedulers
    assume the complete fault-free model.

    Returns a list of ``(RunResult, recorders)`` pairs, where ``recorders``
    is the (possibly empty) list produced by ``recorder_factory`` for that
    run — experiments read their time series from these.
    """
    if scenario is not None:
        from repro.scenarios import active_scenario

        scenario = active_scenario(scenario)
    if recorder_factory is None and scenario is None:
        from repro.engine.parallel import run_cells

        points = run_cells(
            protocol_factory,
            n,
            list(seeds),
            max_parallel_time=max_parallel_time,
            workers=workers,
            engine=engine,
            store=store,
            **({"check_every": check_every} if check_every else {}),
        )
        return [(point.result, []) for point in points]
    outcomes = []
    for seed in seeds:
        protocol = protocol_factory(n)
        convergence = convergence_for(protocol)
        recorders = list(recorder_factory()) if recorder_factory else []
        result = run_protocol(
            protocol,
            n,
            seed=seed,
            max_parallel_time=max_parallel_time,
            convergence=convergence,
            recorders=recorders,
            check_every=check_every,
            engine_cls=engine,
            scenario=scenario,
        )
        outcomes.append((result, recorders))
    return outcomes


def sweep(
    protocol_factory: Callable[[int], PopulationProtocol],
    ns: Sequence[int],
    *,
    repetitions: int,
    base_seed: int,
    max_parallel_time: float,
    recorder_factory: Optional[Callable[[], Sequence[Recorder]]] = None,
    check_every: Optional[int] = None,
    engine: EngineSpec = None,
    store=None,
    workers: int = 0,
    scenario=None,
) -> Dict[int, List[tuple]]:
    """Run a full (sizes × seeds) sweep; returns ``{n: [(result, recorders)]}``.

    ``store`` and ``workers`` are forwarded to :func:`run_cell` (cell-level
    resumability and multi-process scheduling for recorder-free sweeps),
    as is ``scenario`` (non-default interaction model; scenario cells run
    through the serial loop).  Seeds are spawned prefix-stably from
    ``base_seed``, so extending ``ns`` or ``repetitions`` keeps the keys —
    and therefore the stored results — of the smaller sweep valid.
    """
    ns = [int(n) for n in ns]
    seeds = spawn_seeds(base_seed, len(ns) * repetitions)
    cells: Dict[int, List[tuple]] = {}
    cursor = 0
    for n in ns:
        cell_seeds = seeds[cursor : cursor + repetitions]
        cursor += repetitions
        cells[n] = run_cell(
            protocol_factory,
            n,
            cell_seeds,
            max_parallel_time=max_parallel_time,
            recorder_factory=recorder_factory,
            check_every=check_every,
            engine=engine,
            store=store,
            workers=workers,
            scenario=scenario,
        )
    return cells


def timed(fn: Callable[[], ExperimentResult]) -> ExperimentResult:
    """Run ``fn`` and stamp the wall-clock duration on its result."""
    started = _time.perf_counter()
    result = fn()
    result.wall_clock_seconds = _time.perf_counter() - started
    return result
