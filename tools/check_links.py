#!/usr/bin/env python3
"""Markdown link checker for the documentation CI job.

Scans markdown files (and the module docstrings of named ``.py`` files, so
the engine guide in ``src/repro/engine/__init__.py`` is covered) for
``[text](target)`` links and validates every **local** target: the
referenced file or directory must exist relative to the file containing the
link (anchors are stripped; pure-anchor links are checked against the
file's own headings).  ``http(s)``/``mailto`` targets are *not* fetched —
CI must not depend on external availability — but obviously malformed URLs
fail.

Usage::

    python tools/check_links.py README.md docs src/repro/engine/__init__.py

Directories are walked recursively for ``*.md``.  Exits non-zero listing
every broken link.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

#: Inline markdown links: [text](target).  Images share the syntax.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_EXTERNAL = re.compile(r"^(https?|mailto|ftp):")
_URL_SHAPE = re.compile(r"^https?://[^\s/$.?#].[^\s]*$")


def _slugify(heading: str) -> str:
    """GitHub-style anchor slug of a heading line."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _sources(paths: Iterable[str]) -> List[Tuple[Path, str]]:
    """``(path, text)`` pairs to scan: markdown bodies and .py docstrings."""
    sources: List[Tuple[Path, str]] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for md in sorted(path.rglob("*.md")):
                sources.append((md, md.read_text(encoding="utf-8")))
        elif path.suffix == ".py":
            module = ast.parse(path.read_text(encoding="utf-8"))
            docstring = ast.get_docstring(module) or ""
            sources.append((path, docstring))
        else:
            sources.append((path, path.read_text(encoding="utf-8")))
    return sources


def check(paths: Iterable[str]) -> List[str]:
    """Return a list of human-readable problems (empty == all good)."""
    problems: List[str] = []
    for path, text in _sources(paths):
        headings = {_slugify(h) for h in _HEADING.findall(text)}
        for match in _LINK.finditer(text):
            target = match.group(1)
            if _EXTERNAL.match(target):
                if target.startswith(("http://", "https://")) and not _URL_SHAPE.match(
                    target
                ):
                    problems.append(f"{path}: malformed URL {target!r}")
                continue
            base, _, anchor = target.partition("#")
            if not base:
                if anchor and _slugify(anchor) not in headings:
                    problems.append(f"{path}: missing anchor #{anchor}")
                continue
            resolved = (path.parent / base).resolve()
            if not resolved.exists():
                problems.append(f"{path}: broken link -> {target}")
    return problems


def main(argv: List[str]) -> int:
    if not argv:
        print(__doc__)
        return 2
    problems = check(argv)
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"{len(problems)} broken link(s)", file=sys.stderr)
        return 1
    print("all links ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
